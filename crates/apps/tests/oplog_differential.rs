//! Differential tests pinning the shared-operation-log protocol to the
//! centralized sequencer it replaces.
//!
//! Both protocols advertise the same criteria — PRAM between settles,
//! sequential consistency at settle points — and both apply writes
//! optimistically at the writer before ordering them. On **race-free**
//! scripts (single writer per variable, the producer/consumer family)
//! the per-variable delivery order therefore equals the writer's program
//! order under either ordering mechanism, so the two protocols must be
//! *observationally identical*: every read returns the same value at the
//! same history position, and every replica settles on the same value.
//! The wire cost differs (that is the point of the op-log — see the E10
//! table in `bench`), but the visible memory behaviour may not.
//!
//! Two layers:
//!
//! * a deterministic exhaustive sweep over the full cross product of the
//!   standard topologies × all six delivery modes × all four fault
//!   families on one fixed script, so every cell the scenario matrix can
//!   produce is pinned, and
//! * proptests with random distributions and scripts on sampled
//!   coordinates, so the equivalence holds beyond the fixed script.

use apps::scenario::{
    apply_script, generate_family_ops, standard_faults, standard_topologies, FaultFamily,
    SettlePolicy, TopologyFamily, WorkloadFamily,
};
use apps::WorkloadOp;
use dsm::{DynDsm, ProtocolKind};
use histories::{Distribution, History, ProcId, Value, VarId};
use proptest::prelude::*;
use simnet::{DeliveryMode, ExecBackend, SimConfig};

/// Drive `ops` (with the fault family's link plan and scripted crash)
/// through the simnet oracle and collect what the pins compare: the
/// settled value every replica holds and the recorded history.
fn run_cell(
    kind: ProtocolKind,
    dist: &Distribution,
    ops: &[WorkloadOp],
    topology: &TopologyFamily,
    delivery: DeliveryMode,
    fault: FaultFamily,
    seed: u64,
) -> (Vec<(ProcId, VarId, Value)>, History) {
    let config = SimConfig {
        seed,
        topology: match topology {
            TopologyFamily::FullMesh => None,
            f => Some(f.build(dist.process_count())),
        },
        delivery,
        faults: fault.fault_plan(seed),
        ..SimConfig::default()
    };
    let mut dsm = DynDsm::with_backend(kind, dist.clone(), config, ExecBackend::Simnet);
    apply_script(
        &mut dsm,
        ops,
        fault.crash_schedule(ops, dist.process_count()),
    );
    let mut settled = Vec::new();
    for x in 0..dist.var_count() {
        let var = VarId(x);
        for proc in dist.replicas_of(var) {
            settled.push((proc, var, dsm.peek(proc, var)));
        }
    }
    (settled, dsm.history())
}

/// Run the op-log and the sequencer on an identical cell and assert the
/// observational pins: equal settled values, equal histories.
fn assert_cell_equivalent(
    dist: &Distribution,
    ops: &[WorkloadOp],
    topology: &TopologyFamily,
    delivery: DeliveryMode,
    fault: FaultFamily,
    seed: u64,
) {
    let (log_vals, log_hist) = run_cell(
        ProtocolKind::OpLog,
        dist,
        ops,
        topology,
        delivery,
        fault,
        seed,
    );
    let (seq_vals, seq_hist) = run_cell(
        ProtocolKind::Sequential,
        dist,
        ops,
        topology,
        delivery,
        fault,
        seed,
    );
    let cell = format!(
        "{}/{}/{}",
        topology.label(),
        delivery.label(),
        fault.label()
    );
    assert_eq!(
        log_vals, seq_vals,
        "{cell}: op-log settles on different replica values than the sequencer"
    );
    assert_eq!(
        log_hist, seq_hist,
        "{cell}: op-log history diverges from the sequencer history"
    );
}

/// Exhaustive cross product on one fixed race-free script: every
/// standard topology × every delivery mode × every fault family. The
/// scenario matrix and tour can only ever produce cells from this grid,
/// so a green sweep here pins the whole surface.
#[test]
fn op_log_matches_sequencer_on_every_topology_delivery_and_fault_cell() {
    let seed = 7;
    let dist = Distribution::random(6, 12, 2, seed);
    let ops = generate_family_ops(
        &dist,
        &WorkloadFamily::ProducerConsumer,
        6,
        SettlePolicy::Every(5),
        seed,
    );
    let mut cells = 0usize;
    for topology in standard_topologies() {
        for delivery in DeliveryMode::ALL {
            for fault in standard_faults() {
                assert_cell_equivalent(&dist, &ops, &topology, delivery, fault, seed);
                cells += 1;
            }
        }
    }
    assert_eq!(
        cells,
        standard_topologies().len() * DeliveryMode::ALL.len() * standard_faults().len(),
        "the sweep must cover the full cross product"
    );
}

/// Strategy: a random partial-replication deployment plus a race-free
/// producer/consumer script over it, and one sampled sweep coordinate.
#[allow(clippy::type_complexity)]
fn setup() -> impl Strategy<
    Value = (
        Distribution,
        Vec<WorkloadOp>,
        TopologyFamily,
        DeliveryMode,
        FaultFamily,
        u64,
    ),
> {
    (
        (
            4usize..=8,
            3usize..=10,
            1usize..=3,
            any::<u64>(),
            any::<u64>(),
            1usize..=4,
        ),
        (
            0usize..standard_topologies().len(),
            0usize..DeliveryMode::ALL.len(),
            0usize..standard_faults().len(),
        ),
    )
        .prop_map(
            |((procs, vars, replicas, dseed, wseed, settle_every), (t, d, f))| {
                let dist = Distribution::random(procs, vars, replicas.min(procs), dseed);
                let ops = generate_family_ops(
                    &dist,
                    &WorkloadFamily::ProducerConsumer,
                    5,
                    SettlePolicy::Every(settle_every * 2),
                    wseed,
                );
                (
                    dist,
                    ops,
                    standard_topologies()[t].clone(),
                    DeliveryMode::ALL[d],
                    standard_faults()[f],
                    wseed,
                )
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random deployments and race-free scripts on sampled coordinates:
    /// op-log and sequencer settle on the same replica values and record
    /// the same history, including under link faults and the scripted
    /// crash-restart of the highest-id process.
    #[test]
    fn op_log_matches_sequencer_on_random_race_free_scripts(
        (dist, ops, topology, delivery, fault, seed) in setup()
    ) {
        assert_cell_equivalent(&dist, &ops, &topology, delivery, fault, seed);
    }
}
