//! Differential property tests pinning the threaded execution backend to
//! the simnet oracle, through the same runtime-dispatched path every
//! driver uses.
//!
//! Two pins, per protocol, on full-mesh deployments of 4 and 8 processes:
//!
//! * **Replay mode is bit-identical**: the threaded backend re-executes
//!   the simnet delivery schedule on real threads, so the recorded
//!   history, the per-node control-record accounting, and every settled
//!   replica value must equal the simnet run exactly — any workload.
//! * **Free-running mode converges to the same settled values** on
//!   race-free (single-writer-per-variable) scripts: delivery timing is
//!   real and nondeterministic, but per-link FIFO plus a quiescence
//!   barrier at every settle point pins what the replicas hold whenever
//!   the application looks.
//!
//! The same two pins then sweep each capability the ring-fabric backend
//! gained: every swept delivery mode (multicast, batching, delta) on the
//! mesh, and routed sparse topologies (ring / grid / star / line), with
//! multicast also exercised *on* the sparse topologies, where broadcast
//! trees actually share edges.

use apps::scenario::{generate_family_ops, SettlePolicy, WorkloadFamily};
use apps::WorkloadOp;
use dsm::{ControlSummary, DynDsm, ProtocolKind};
use histories::{Distribution, History, ProcId, Value, VarId};
use proptest::prelude::*;
use simnet::{DeliveryMode, ExecBackend, SimConfig, ThreadedMode, Topology};

/// Drive `ops` on `backend` under `config` and collect everything the
/// pins compare: settled replica values (one per replica of each
/// variable), the recorded history, and the control-record accounting.
fn run_with(
    kind: ProtocolKind,
    dist: &Distribution,
    ops: &[WorkloadOp],
    config: SimConfig,
    backend: ExecBackend,
) -> (Vec<(ProcId, VarId, Value)>, History, ControlSummary) {
    let mut dsm = DynDsm::with_backend(kind, dist.clone(), config, backend);
    for op in ops {
        match *op {
            WorkloadOp::Write { proc, var, value } => {
                dsm.write(proc, var, value).expect("script respects dist");
            }
            WorkloadOp::Read { proc, var } => {
                let _ = dsm.read(proc, var).expect("script respects dist");
            }
            WorkloadOp::Settle => {
                dsm.settle();
            }
        }
    }
    dsm.settle();
    let mut settled = Vec::new();
    for x in 0..dist.var_count() {
        let var = VarId(x);
        for proc in dist.replicas_of(var) {
            settled.push((proc, var, dsm.peek(proc, var)));
        }
    }
    (settled, dsm.history(), dsm.control_summary())
}

/// [`run_with`] under the default configuration.
fn run_on(
    kind: ProtocolKind,
    dist: &Distribution,
    ops: &[WorkloadOp],
    backend: ExecBackend,
) -> (Vec<(ProcId, VarId, Value)>, History, ControlSummary) {
    run_with(kind, dist, ops, SimConfig::default(), backend)
}

/// The sparse topologies the threaded backend must host via relays.
fn sparse_topology(pick: usize, n: usize) -> Topology {
    match pick % 4 {
        0 => Topology::ring(n),
        1 => Topology::grid_of(n),
        2 => Topology::star(n),
        _ => Topology::line(n),
    }
}

/// Strategy: a 4- or 8-process random distribution plus a race-free
/// (single-writer-per-variable) producer/consumer script over it.
fn mesh_setup() -> impl Strategy<Value = (Distribution, Vec<WorkloadOp>)> {
    (
        0usize..=1,
        3usize..=8,
        1usize..=3,
        any::<u64>(),
        any::<u64>(),
        1usize..=4,
    )
        .prop_map(|(size_pick, vars, replicas, dseed, wseed, settle_every)| {
            let procs = if size_pick == 0 { 4 } else { 8 };
            let dist = Distribution::random(procs, vars, replicas.min(procs), dseed);
            let ops = generate_family_ops(
                &dist,
                &WorkloadFamily::ProducerConsumer,
                4,
                SettlePolicy::Every(settle_every * 3),
                wseed,
            );
            (dist, ops)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Replay mode: bit-identical to simnet — settled values, recorded
    /// history (every read sees the same value at the same position),
    /// and per-node control-record counts/bytes.
    #[test]
    fn replay_mode_is_bit_identical_to_simnet((dist, ops) in mesh_setup()) {
        for kind in ProtocolKind::ALL {
            let (sim_vals, sim_hist, sim_ctl) =
                run_on(kind, &dist, &ops, ExecBackend::Simnet);
            let (thr_vals, thr_hist, thr_ctl) =
                run_on(kind, &dist, &ops, ExecBackend::Threaded(ThreadedMode::Replay));
            prop_assert_eq!(&sim_vals, &thr_vals, "{} settled values", kind);
            prop_assert_eq!(&sim_hist, &thr_hist, "{} history", kind);
            prop_assert_eq!(&sim_ctl, &thr_ctl, "{} control records", kind);
        }
    }

    /// Free-running mode: real concurrent delivery, but race-free scripts
    /// settle to exactly the values the simnet run settles to.
    #[test]
    fn free_running_settles_to_simnet_values((dist, ops) in mesh_setup()) {
        for kind in ProtocolKind::ALL {
            let (sim_vals, _, _) = run_on(kind, &dist, &ops, ExecBackend::Simnet);
            let (thr_vals, _, _) =
                run_on(kind, &dist, &ops, ExecBackend::Threaded(ThreadedMode::FreeRunning));
            prop_assert_eq!(&sim_vals, &thr_vals, "{} settled values", kind);
        }
    }
}

/// Strategy: a 4-process random distribution plus a race-free script —
/// the small deployments the capability sweeps run on (every protocol ×
/// mode × topology multiplies the cost, so the fabric stays small).
fn small_setup() -> impl Strategy<Value = (Distribution, Vec<WorkloadOp>)> {
    (2usize..=6, 1usize..=3, any::<u64>(), any::<u64>()).prop_map(
        |(vars, replicas, dseed, wseed)| {
            let dist = Distribution::random(4, vars, replicas.min(4), dseed);
            let ops = generate_family_ops(
                &dist,
                &WorkloadFamily::ProducerConsumer,
                4,
                SettlePolicy::Every(6),
                wseed,
            );
            (dist, ops)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Threaded × delivery modes on the mesh: every swept wire mode
    /// (multicast, batching, delta, and all three together) is accepted
    /// by the threaded backend, replay stays bit-identical to the simnet
    /// run under the same mode, and free-running settles to its values.
    #[test]
    fn threaded_backend_pins_every_delivery_mode((dist, ops) in small_setup()) {
        for delivery in [
            DeliveryMode::MULTICAST,
            DeliveryMode::BATCHED,
            DeliveryMode::DELTA,
            DeliveryMode::MULTICAST_BATCHED_DELTA,
        ] {
            let config = SimConfig { delivery, ..SimConfig::default() };
            for kind in ProtocolKind::ALL {
                let (sim_vals, sim_hist, sim_ctl) =
                    run_with(kind, &dist, &ops, config.clone(), ExecBackend::Simnet);
                let (rep_vals, rep_hist, rep_ctl) = run_with(
                    kind, &dist, &ops, config.clone(),
                    ExecBackend::Threaded(ThreadedMode::Replay),
                );
                prop_assert_eq!(&sim_vals, &rep_vals,
                    "{} × {} replay settled values", kind, delivery.label());
                prop_assert_eq!(&sim_hist, &rep_hist,
                    "{} × {} replay history", kind, delivery.label());
                prop_assert_eq!(&sim_ctl, &rep_ctl,
                    "{} × {} replay control records", kind, delivery.label());
                let (free_vals, _, _) = run_with(
                    kind, &dist, &ops, config.clone(),
                    ExecBackend::Threaded(ThreadedMode::FreeRunning),
                );
                prop_assert_eq!(&sim_vals, &free_vals,
                    "{} × {} free-running settled values", kind, delivery.label());
            }
        }
    }

    /// Threaded × routed sparse topologies: relay nodes on worker threads
    /// carry every protocol over ring/grid/star/line, with multicast also
    /// swept (broadcast trees only share edges when routed). Replay is
    /// bit-identical to the simnet run over the same topology;
    /// free-running settles to its values.
    #[test]
    fn threaded_backend_pins_routed_topologies(
        (dist, ops) in small_setup(),
        pick in 0usize..4,
        multicast in any::<bool>(),
    ) {
        let config = SimConfig {
            topology: Some(sparse_topology(pick, 4)),
            delivery: if multicast { DeliveryMode::MULTICAST } else { DeliveryMode::UNICAST },
            ..SimConfig::default()
        };
        for kind in ProtocolKind::ALL {
            let (sim_vals, sim_hist, sim_ctl) =
                run_with(kind, &dist, &ops, config.clone(), ExecBackend::Simnet);
            let (rep_vals, rep_hist, rep_ctl) = run_with(
                kind, &dist, &ops, config.clone(),
                ExecBackend::Threaded(ThreadedMode::Replay),
            );
            prop_assert_eq!(&sim_vals, &rep_vals, "{} routed replay settled values", kind);
            prop_assert_eq!(&sim_hist, &rep_hist, "{} routed replay history", kind);
            prop_assert_eq!(&sim_ctl, &rep_ctl, "{} routed replay control records", kind);
            let (free_vals, _, _) = run_with(
                kind, &dist, &ops, config.clone(),
                ExecBackend::Threaded(ThreadedMode::FreeRunning),
            );
            prop_assert_eq!(&sim_vals, &free_vals,
                "{} routed free-running settled values", kind);
        }
    }
}

/// Each sparse topology gets one deterministic cell outside the proptest
/// loop, so a plain `cargo test` failure names the topology directly.
#[test]
fn threaded_routed_topologies_agree_on_a_fixed_script() {
    let dist = Distribution::random(4, 5, 2, 19);
    let ops = generate_family_ops(
        &dist,
        &WorkloadFamily::ProducerConsumer,
        4,
        SettlePolicy::Every(5),
        31,
    );
    for pick in 0..4 {
        let topology = sparse_topology(pick, 4);
        let config = SimConfig {
            topology: Some(topology.clone()),
            ..SimConfig::default()
        };
        for kind in ProtocolKind::ALL {
            let (sim_vals, sim_hist, _) =
                run_with(kind, &dist, &ops, config.clone(), ExecBackend::Simnet);
            let (rep_vals, rep_hist, _) = run_with(
                kind,
                &dist,
                &ops,
                config.clone(),
                ExecBackend::Threaded(ThreadedMode::Replay),
            );
            assert_eq!(sim_vals, rep_vals, "{kind} on {topology:?}: replay values");
            assert_eq!(sim_hist, rep_hist, "{kind} on {topology:?}: replay history");
            let (free_vals, _, _) = run_with(
                kind,
                &dist,
                &ops,
                config.clone(),
                ExecBackend::Threaded(ThreadedMode::FreeRunning),
            );
            assert_eq!(
                sim_vals, free_vals,
                "{kind} on {topology:?}: free-running values"
            );
        }
    }
}

/// One deterministic smoke case per mode outside the proptest loop, so a
/// plain `cargo test` failure names the mode without shrinking first.
#[test]
fn threaded_modes_agree_on_a_fixed_producer_consumer_script() {
    let dist = Distribution::random(4, 6, 2, 11);
    let ops = generate_family_ops(
        &dist,
        &WorkloadFamily::ProducerConsumer,
        5,
        SettlePolicy::Every(4),
        23,
    );
    for kind in ProtocolKind::ALL {
        let (sim_vals, sim_hist, sim_ctl) = run_on(kind, &dist, &ops, ExecBackend::Simnet);
        let (rep_vals, rep_hist, rep_ctl) = run_on(
            kind,
            &dist,
            &ops,
            ExecBackend::Threaded(ThreadedMode::Replay),
        );
        assert_eq!(sim_vals, rep_vals, "{kind} replay settled values");
        assert_eq!(sim_hist, rep_hist, "{kind} replay history");
        assert_eq!(sim_ctl, rep_ctl, "{kind} replay control records");
        let (free_vals, _, _) = run_on(
            kind,
            &dist,
            &ops,
            ExecBackend::Threaded(ThreadedMode::FreeRunning),
        );
        assert_eq!(sim_vals, free_vals, "{kind} free-running settled values");
    }
}

/// The op-log's own deterministic pin: the fifth protocol's
/// flat-combining lanes and shard-log replay must survive the move onto
/// real threads exactly like the other four. Replay is bit-identical to
/// the simnet oracle (settled values, history, control records) on a
/// larger deployment than the `ALL` sweeps use, under both the plain
/// wire and the full multicast+batched+delta stack; free-running
/// converges to the same settled values.
#[test]
fn op_log_threaded_replay_is_bit_identical_and_free_running_converges() {
    let dist = Distribution::random(8, 12, 2, 17);
    let ops = generate_family_ops(
        &dist,
        &WorkloadFamily::ProducerConsumer,
        6,
        SettlePolicy::Every(5),
        29,
    );
    for delivery in [DeliveryMode::UNICAST, DeliveryMode::MULTICAST_BATCHED_DELTA] {
        let config = SimConfig {
            delivery,
            ..SimConfig::default()
        };
        let (sim_vals, sim_hist, sim_ctl) = run_with(
            ProtocolKind::OpLog,
            &dist,
            &ops,
            config.clone(),
            ExecBackend::Simnet,
        );
        let (rep_vals, rep_hist, rep_ctl) = run_with(
            ProtocolKind::OpLog,
            &dist,
            &ops,
            config.clone(),
            ExecBackend::Threaded(ThreadedMode::Replay),
        );
        assert_eq!(
            sim_vals,
            rep_vals,
            "op-log × {} replay settled values",
            delivery.label()
        );
        assert_eq!(
            sim_hist,
            rep_hist,
            "op-log × {} replay history",
            delivery.label()
        );
        assert_eq!(
            sim_ctl,
            rep_ctl,
            "op-log × {} replay control records",
            delivery.label()
        );
        let (free_vals, _, _) = run_with(
            ProtocolKind::OpLog,
            &dist,
            &ops,
            config.clone(),
            ExecBackend::Threaded(ThreadedMode::FreeRunning),
        );
        assert_eq!(
            sim_vals,
            free_vals,
            "op-log × {} free-running settled values",
            delivery.label()
        );
    }
}
