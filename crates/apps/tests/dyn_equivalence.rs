//! Differential property test of the erased runtime: for random workloads
//! over random distributions, the runtime-dispatched [`DynDsm`] and the
//! compile-time-generic [`DsmSystem<P>`] produce *identical* histories,
//! network statistics, and control-information summaries, for all five
//! protocols. This is the guarantee that lets benchmarks and drivers use
//! the scenario engine without fearing the erasure changed semantics.

use apps::workload::{generate, WorkloadOp, WorkloadSpec};
use dsm::{
    CausalFull, CausalPartial, ControlSummary, DsmSystem, DynDsm, OpLog, PramPartial, ProtocolKind,
    ProtocolSpec, Sequential,
};
use histories::{Distribution, History};
use proptest::prelude::*;
use simnet::{NetworkStats, SimConfig};

type Observation = (History, NetworkStats, ControlSummary, u64);

/// Drive the compile-time-generic system through a workload script.
fn run_generic<P: ProtocolSpec>(dist: &Distribution, ops: &[WorkloadOp]) -> Observation {
    let mut dsm: DsmSystem<P> = DsmSystem::with_config(dist.clone(), SimConfig::default());
    for op in ops {
        match *op {
            WorkloadOp::Write { proc, var, value } => dsm.write(proc, var, value).unwrap(),
            WorkloadOp::Read { proc, var } => {
                let _ = dsm.read(proc, var).unwrap();
            }
            WorkloadOp::Settle => {
                dsm.settle();
            }
        }
    }
    dsm.settle();
    (
        dsm.history(),
        dsm.network_stats().clone(),
        dsm.control_summary(),
        dsm.operation_count(),
    )
}

/// Drive the runtime-dispatched system through the same script.
fn run_erased(kind: ProtocolKind, dist: &Distribution, ops: &[WorkloadOp]) -> Observation {
    let mut dsm = DynDsm::with_config(kind, dist.clone(), SimConfig::default());
    for op in ops {
        match *op {
            WorkloadOp::Write { proc, var, value } => dsm.write(proc, var, value).unwrap(),
            WorkloadOp::Read { proc, var } => {
                let _ = dsm.read(proc, var).unwrap();
            }
            WorkloadOp::Settle => {
                dsm.settle();
            }
        }
    }
    dsm.settle();
    (
        dsm.history(),
        dsm.network_stats().clone(),
        dsm.control_summary(),
        dsm.operation_count(),
    )
}

fn observe_generic(kind: ProtocolKind, dist: &Distribution, ops: &[WorkloadOp]) -> Observation {
    match kind {
        ProtocolKind::CausalFull => run_generic::<CausalFull>(dist, ops),
        ProtocolKind::CausalPartial => run_generic::<CausalPartial>(dist, ops),
        ProtocolKind::PramPartial => run_generic::<PramPartial>(dist, ops),
        ProtocolKind::Sequential => run_generic::<Sequential>(dist, ops),
        ProtocolKind::OpLog => run_generic::<OpLog>(dist, ops),
    }
}

fn small_setup() -> impl Strategy<Value = (Distribution, Vec<WorkloadOp>)> {
    (
        2usize..=6,
        2usize..=8,
        1usize..=3,
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(procs, vars, replicas, dseed, wseed)| {
            let dist = Distribution::random(procs, vars, replicas.min(procs), dseed);
            let spec = WorkloadSpec {
                ops_per_process: 6,
                write_ratio: 0.5,
                settle_every: 3,
                seed: wseed,
            };
            let ops = generate(&dist, &spec);
            (dist, ops)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn erased_and_generic_systems_are_observably_identical((dist, ops) in small_setup()) {
        for kind in ProtocolKind::ALL {
            let (gh, gn, gc, gops) = observe_generic(kind, &dist, &ops);
            let (eh, en, ec, eops) = run_erased(kind, &dist, &ops);
            prop_assert_eq!(&gh, &eh, "{} histories diverged", kind);
            prop_assert_eq!(&gn, &en, "{} network stats diverged", kind);
            prop_assert_eq!(&gc, &ec, "{} control summaries diverged", kind);
            prop_assert_eq!(gops, eops, "{} operation counts diverged", kind);
        }
    }
}
