//! Weighted directed networks and the sequential Bellman-Ford reference.
//!
//! The paper's case study (§6) models a packet-switching network as a
//! directed graph whose nodes run the distributed shortest-path
//! computation. This module provides the graph type, the concrete Figure 8
//! network, generators for larger experiments, and a sequential
//! Bellman-Ford used as the correctness reference for the distributed runs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Effectively-infinite distance used before a node has been reached.
pub const INFINITY: i64 = i64::MAX / 4;

/// A weighted directed graph with non-negative edge costs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    n: usize,
    weights: BTreeMap<(usize, usize), i64>,
}

impl Network {
    /// An edgeless network over `n` nodes.
    pub fn new(n: usize) -> Self {
        Network {
            n,
            weights: BTreeMap::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.weights.len()
    }

    /// Add (or overwrite) the directed edge `from → to` with cost `w`.
    ///
    /// Panics on out-of-range endpoints, self-loops, or negative costs
    /// (the paper's setting assumes non-negative link costs).
    pub fn add_edge(&mut self, from: usize, to: usize, w: i64) {
        assert!(from < self.n && to < self.n, "edge endpoint out of range");
        assert_ne!(from, to, "self loops are not allowed");
        assert!(w >= 0, "link costs are non-negative");
        self.weights.insert((from, to), w);
    }

    /// The cost of edge `from → to` (`INFINITY` when absent, 0 when
    /// `from == to`), matching the paper's `w(i, j)` convention.
    pub fn weight(&self, from: usize, to: usize) -> i64 {
        if from == to {
            0
        } else {
            self.weights.get(&(from, to)).copied().unwrap_or(INFINITY)
        }
    }

    /// The predecessor set `Γ⁻¹(i)`: nodes with an edge into `i`.
    pub fn predecessors(&self, i: usize) -> Vec<usize> {
        self.weights
            .keys()
            .filter(|&&(_, to)| to == i)
            .map(|&(from, _)| from)
            .collect()
    }

    /// The successor set: nodes `i` has an edge to.
    pub fn successors(&self, i: usize) -> Vec<usize> {
        self.weights
            .keys()
            .filter(|&&(from, _)| from == i)
            .map(|&(_, to)| to)
            .collect()
    }

    /// All directed edges with their costs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, i64)> + '_ {
        self.weights.iter().map(|(&(a, b), &w)| (a, b, w))
    }

    /// The Figure 8 example network: five nodes, the edge set implied by the
    /// paper's variable distribution (`Γ⁻¹(2) = {1,3}`, `Γ⁻¹(3) = {1,2}`,
    /// `Γ⁻¹(4) = {2,3}`, `Γ⁻¹(5) = {3,4}`), with the figure's link costs
    /// assigned as follows (node 1 of the paper is index 0 here):
    ///
    /// ```text
    /// 1→2: 4   1→3: 1   2→3: 2   3→2: 1
    /// 2→4: 8   3→4: 2   3→5: 3   4→5: 3
    /// ```
    pub fn fig8() -> Self {
        let mut g = Network::new(5);
        g.add_edge(0, 1, 4);
        g.add_edge(0, 2, 1);
        g.add_edge(1, 2, 2);
        g.add_edge(2, 1, 1);
        g.add_edge(1, 3, 8);
        g.add_edge(2, 3, 2);
        g.add_edge(2, 4, 3);
        g.add_edge(3, 4, 3);
        g
    }

    /// A directed ring `0 → 1 → … → n-1 → 0` with unit costs.
    pub fn ring(n: usize) -> Self {
        let mut g = Network::new(n);
        for i in 0..n {
            let j = (i + 1) % n;
            if i != j {
                g.add_edge(i, j, 1);
            }
        }
        g
    }

    /// A random strongly reachable network: a random spanning arborescence
    /// from node 0 plus `extra_edges` random edges, costs in `1..=max_cost`.
    pub fn random_reachable(n: usize, extra_edges: usize, max_cost: i64, seed: u64) -> Self {
        assert!(n >= 2 && max_cost >= 1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut g = Network::new(n);
        // Spanning structure: every node i >= 1 gets an incoming edge from a
        // random earlier node, so everything is reachable from node 0.
        for i in 1..n {
            let from = rng.gen_range(0..i);
            g.add_edge(from, i, rng.gen_range(1..=max_cost));
        }
        let mut added = 0;
        let mut attempts = 0;
        while added < extra_edges && attempts < extra_edges * 20 {
            attempts += 1;
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b && !g.weights.contains_key(&(a, b)) {
                g.add_edge(a, b, rng.gen_range(1..=max_cost));
                added += 1;
            }
        }
        g
    }
}

/// Sequential Bellman-Ford from `source`: the reference the distributed
/// implementation is validated against. Returns the distance vector
/// (`INFINITY` for unreachable nodes).
pub fn shortest_paths_reference(net: &Network, source: usize) -> Vec<i64> {
    let n = net.node_count();
    let mut dist = vec![INFINITY; n];
    dist[source] = 0;
    for _ in 0..n {
        let mut changed = false;
        for (from, to, w) in net.edges() {
            if dist[from] != INFINITY && dist[from] + w < dist[to] {
                dist[to] = dist[from] + w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_structure_matches_the_papers_distribution() {
        let g = Network::fig8();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 8);
        let mut p1 = g.predecessors(1);
        p1.sort_unstable();
        assert_eq!(p1, vec![0, 2]);
        let mut p2 = g.predecessors(2);
        p2.sort_unstable();
        assert_eq!(p2, vec![0, 1]);
        let mut p3 = g.predecessors(3);
        p3.sort_unstable();
        assert_eq!(p3, vec![1, 2]);
        let mut p4 = g.predecessors(4);
        p4.sort_unstable();
        assert_eq!(p4, vec![2, 3]);
        assert!(g.predecessors(0).is_empty());
    }

    #[test]
    fn fig8_shortest_paths() {
        let g = Network::fig8();
        let d = shortest_paths_reference(&g, 0);
        assert_eq!(d, vec![0, 2, 1, 3, 4]);
    }

    #[test]
    fn weight_conventions() {
        let g = Network::fig8();
        assert_eq!(g.weight(0, 0), 0);
        assert_eq!(g.weight(0, 1), 4);
        assert_eq!(g.weight(1, 0), INFINITY);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_costs_are_rejected() {
        let mut g = Network::new(2);
        g.add_edge(0, 1, -1);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loops_are_rejected() {
        let mut g = Network::new(2);
        g.add_edge(1, 1, 3);
    }

    #[test]
    fn ring_distances_grow_linearly() {
        let g = Network::ring(6);
        let d = shortest_paths_reference(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(g.successors(5), vec![0]);
    }

    #[test]
    fn random_networks_are_reachable_and_reproducible() {
        let a = Network::random_reachable(12, 10, 9, 7);
        let b = Network::random_reachable(12, 10, 9, 7);
        assert_eq!(a, b);
        let d = shortest_paths_reference(&a, 0);
        assert!(d.iter().all(|&x| x < INFINITY), "all nodes reachable");
        assert!(a.edge_count() >= 11);
    }

    #[test]
    fn unreachable_nodes_stay_at_infinity() {
        let mut g = Network::new(3);
        g.add_edge(0, 1, 5);
        let d = shortest_paths_reference(&g, 0);
        assert_eq!(d, vec![0, 5, INFINITY]);
    }
}
