//! Blocked matrix product over the DSM — one of the *oblivious*
//! computations Lipton & Sandberg list as programmable on a PRAM memory
//! (paper §5, footnote 5): the data movement is independent of the data
//! values, every shared cell has a single writer, and readers only need
//! each writer's updates in program order.
//!
//! Layout: a *producer* process (`p0`) publishes the input matrices `A`
//! and `B` cell by cell and then raises a ready flag; `w` worker processes
//! each own a contiguous block of output rows, read the inputs they need,
//! and publish their block of `C = A·B`. Partial replication keeps each
//! worker's replica set to the inputs it actually reads plus its own output
//! block.

use dsm::{DynDsm, ProtocolKind};
use histories::{Distribution, ProcId, Value, VarId};
use simnet::SimConfig;

/// A dense row-major matrix of `i64`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Build from a row-major vector (must have `rows * cols` entries).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<i64>) -> Self {
        assert_eq!(data.len(), rows * cols, "dimension mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> i64 {
        self.data[i * self.cols + j]
    }

    /// Write entry `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: i64) {
        self.data[i * self.cols + j] = v;
    }

    /// Sequential reference product.
    pub fn multiply(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for j in 0..other.cols {
                let mut acc = 0i64;
                for k in 0..self.cols {
                    acc += self.get(i, k) * other.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }
}

/// Result of a distributed matrix product run.
#[derive(Clone, Debug)]
pub struct MatrixRun {
    /// The computed product.
    pub product: Matrix,
    /// Messages sent by the MCS.
    pub messages: u64,
    /// Control bytes sent by the MCS.
    pub control_bytes: u64,
    /// Application operations issued.
    pub operations: u64,
}

/// Variable layout for an `n×n` product with `workers` workers: producer
/// variables are `A` cells, then `B` cells, then the ready flag, then `C`
/// cells.
struct Layout {
    n: usize,
}

impl Layout {
    fn a(&self, i: usize, j: usize) -> VarId {
        VarId(i * self.n + j)
    }
    fn b(&self, i: usize, j: usize) -> VarId {
        VarId(self.n * self.n + i * self.n + j)
    }
    fn ready(&self) -> VarId {
        VarId(2 * self.n * self.n)
    }
    fn c(&self, i: usize, j: usize) -> VarId {
        VarId(2 * self.n * self.n + 1 + i * self.n + j)
    }
}

fn worker_rows(n: usize, workers: usize, w: usize) -> std::ops::Range<usize> {
    let per = n.div_ceil(workers);
    let start = (w * per).min(n);
    let end = ((w + 1) * per).min(n);
    start..end
}

/// The variable distribution: the producer (process 0) replicates `A`, `B`
/// and the ready flag; worker `w` (process `w + 1`) additionally replicates
/// the rows of `A` it needs, all of `B`, the flag, and its block of `C`.
pub fn matrix_distribution(n: usize, workers: usize) -> Distribution {
    let layout = Layout { n };
    let mut dist = Distribution::new(workers + 1, 2 * n * n + 1 + n * n);
    let producer = ProcId(0);
    for i in 0..n {
        for j in 0..n {
            dist.assign(producer, layout.a(i, j));
            dist.assign(producer, layout.b(i, j));
        }
    }
    dist.assign(producer, layout.ready());
    for w in 0..workers {
        let p = ProcId(w + 1);
        dist.assign(p, layout.ready());
        for i in worker_rows(n, workers, w) {
            for j in 0..n {
                dist.assign(p, layout.a(i, j));
                dist.assign(p, layout.c(i, j));
            }
        }
        for i in 0..n {
            for j in 0..n {
                dist.assign(p, layout.b(i, j));
            }
        }
    }
    dist
}

/// Run the distributed product of `a` and `b` (both `n×n`) with `workers`
/// worker processes over the protocol selected by `kind`.
pub fn run_matrix_product(
    kind: ProtocolKind,
    a: &Matrix,
    b: &Matrix,
    workers: usize,
    config: SimConfig,
) -> MatrixRun {
    assert_eq!(a.rows(), a.cols(), "square matrices only");
    assert_eq!(a.rows(), b.rows(), "dimension mismatch");
    assert_eq!(b.rows(), b.cols(), "square matrices only");
    assert!(workers >= 1);
    let n = a.rows();
    let layout = Layout { n };
    let dist = matrix_distribution(n, workers);
    let mut dsm = DynDsm::with_config(kind, dist, config);
    dsm.disable_recording();
    let producer = ProcId(0);

    // Producer publishes the inputs in program order, then the flag.
    for i in 0..n {
        for j in 0..n {
            dsm.write(producer, layout.a(i, j), a.get(i, j)).unwrap();
            dsm.write(producer, layout.b(i, j), b.get(i, j)).unwrap();
        }
    }
    dsm.write(producer, layout.ready(), 1).unwrap();
    dsm.settle();

    // Each worker observes the flag (PRAM: it then also holds every earlier
    // write of the producer), computes its block and publishes it.
    let mut product = Matrix::zeros(n, n);
    for w in 0..workers {
        let p = ProcId(w + 1);
        let flag = dsm.read(p, layout.ready()).unwrap();
        assert_eq!(flag, Value::Int(1), "flag must be visible after settle");
        for i in worker_rows(n, workers, w) {
            for j in 0..n {
                let mut acc = 0i64;
                for k in 0..n {
                    let aik = dsm.read(p, layout.a(i, k)).unwrap().as_int().unwrap();
                    let bkj = dsm.read(p, layout.b(k, j)).unwrap().as_int().unwrap();
                    acc += aik * bkj;
                }
                dsm.write(p, layout.c(i, j), acc).unwrap();
                product.set(i, j, acc);
            }
        }
    }
    dsm.settle();

    let stats = dsm.network_stats();
    MatrixRun {
        product,
        messages: stats.total_messages(),
        control_bytes: stats.total_control_bytes(),
        operations: dsm.operation_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, seed: u64) -> Matrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        Matrix::from_vec(n, n, (0..n * n).map(|_| rng.gen_range(-9..=9)).collect())
    }

    #[test]
    fn sequential_reference_multiply() {
        let a = Matrix::from_vec(2, 2, vec![1, 2, 3, 4]);
        let b = Matrix::from_vec(2, 2, vec![5, 6, 7, 8]);
        let c = a.multiply(&b);
        assert_eq!(c, Matrix::from_vec(2, 2, vec![19, 22, 43, 50]));
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
    }

    #[test]
    fn distributed_product_matches_reference_on_pram_partial() {
        let a = random_matrix(5, 1);
        let b = random_matrix(5, 2);
        let run = run_matrix_product(ProtocolKind::PramPartial, &a, &b, 3, SimConfig::default());
        assert_eq!(run.product, a.multiply(&b));
        assert!(run.messages > 0);
        assert!(run.operations > 0);
    }

    #[test]
    fn distributed_product_matches_reference_on_causal_full() {
        let a = random_matrix(4, 3);
        let b = random_matrix(4, 4);
        let run = run_matrix_product(ProtocolKind::CausalFull, &a, &b, 2, SimConfig::default());
        assert_eq!(run.product, a.multiply(&b));
    }

    #[test]
    fn single_worker_and_many_workers_agree() {
        let a = random_matrix(6, 5);
        let b = random_matrix(6, 6);
        let one = run_matrix_product(ProtocolKind::PramPartial, &a, &b, 1, SimConfig::default());
        let many = run_matrix_product(ProtocolKind::PramPartial, &a, &b, 6, SimConfig::default());
        assert_eq!(one.product, many.product);
    }

    #[test]
    fn partial_replication_cuts_control_bytes() {
        let a = random_matrix(6, 7);
        let b = random_matrix(6, 8);
        let pram = run_matrix_product(ProtocolKind::PramPartial, &a, &b, 3, SimConfig::default());
        let full = run_matrix_product(ProtocolKind::CausalFull, &a, &b, 3, SimConfig::default());
        assert!(
            pram.control_bytes < full.control_bytes,
            "pram {} vs causal-full {}",
            pram.control_bytes,
            full.control_bytes
        );
    }

    #[test]
    fn worker_row_partition_covers_all_rows_without_overlap() {
        for n in [1, 4, 7, 10] {
            for workers in [1, 2, 3, 5] {
                let mut seen = vec![false; n];
                for w in 0..workers {
                    for i in worker_rows(n, workers, w) {
                        assert!(!seen[i]);
                        seen[i] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "n={n} workers={workers}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dimensions_are_rejected() {
        Matrix::from_vec(2, 2, vec![1, 2, 3]);
    }
}
