//! # apps — workloads programmed against the partial-replication DSM
//!
//! The applications the paper uses to motivate PRAM-consistent partial
//! replication, implemented on top of the [`dsm`] crate:
//!
//! * [`bellman_ford`] — the distributed Bellman-Ford shortest-path
//!   computation of §6 (Figures 7–9), including the exact Figure 8 network.
//! * [`matrix`] — blocked matrix product, one of the oblivious computations
//!   of Lipton & Sandberg (§5).
//! * [`dynprog`] — pipelined dynamic programming (longest common
//!   subsequence), the second Lipton & Sandberg family.
//! * [`jacobi`] — totally asynchronous fixed-point iteration (Sinha's
//!   observation that such methods converge even on weak memories).
//! * [`graphs`] — weighted digraphs, the Figure 8 network, generators, and
//!   the sequential Bellman-Ford reference.
//! * [`workload`] — the operation-level workload script language.
//! * [`scenario`] — the scenario engine: distribution × workload ×
//!   latency × settle-policy bundles executed under any protocol chosen at
//!   runtime, returning a unified [`scenario::RunReport`]. Every
//!   comparative driver (benchmarks, examples, tests) goes through it.
//!
//! Every distributed run is validated against a sequential reference
//! implementation in the module's tests, and every app driver picks its
//! protocol at runtime from a [`dsm::ProtocolKind`] value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bellman_ford;
pub mod dynprog;
pub mod graphs;
pub mod jacobi;
pub mod matrix;
pub mod scenario;
pub mod workload;

pub use bellman_ford::{
    bellman_ford_distribution, counter_var, distance_var, run_bellman_ford, BellmanFordRun,
};
pub use dynprog::{lcs_distribution, lcs_reference, run_lcs, LcsRun};
pub use graphs::{shortest_paths_reference, Network, INFINITY};
pub use jacobi::{jacobi_distribution, run_jacobi, FixedPointProblem, JacobiRun, SCALE};
pub use matrix::{matrix_distribution, run_matrix_product, Matrix, MatrixRun};
pub use scenario::{
    generate_family_ops, latency_label, parallel_map, run_all, run_scenario, run_script,
    standard_deliveries, standard_distributions, standard_latencies, standard_topologies,
    standard_workloads, DistributionFamily, RunReport, Scenario, SettlePolicy, TopologyFamily,
    WorkloadFamily,
};
pub use workload::{generate, WorkloadOp, WorkloadSpec};
