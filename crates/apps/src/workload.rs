//! Workload scripts: the operation-level language of the scenario engine.
//!
//! A workload is a flat list of [`WorkloadOp`]s — reads, writes, and
//! settle points — that [`crate::scenario::run_script`] replays against a
//! runtime-selected protocol deployment. [`WorkloadSpec`] + [`generate`]
//! are the compact legacy interface for the uniform random family; richer
//! families (hotspot, producer/consumer, partition-local) live in
//! [`crate::scenario`].

use crate::scenario::{generate_family_ops, SettlePolicy, WorkloadFamily};
use histories::{Distribution, ProcId, VarId};

/// One application-level operation of a workload script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadOp {
    /// `w_p(var)value`
    Write {
        /// Issuing process.
        proc: ProcId,
        /// Written variable.
        var: VarId,
        /// Written value (globally unique within the workload).
        value: i64,
    },
    /// `r_p(var)`
    Read {
        /// Issuing process.
        proc: ProcId,
        /// Read variable.
        var: VarId,
    },
    /// Deliver every in-flight message before continuing.
    Settle,
}

/// Parameters of the uniform random workload generator.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Operations issued per process.
    pub ops_per_process: usize,
    /// Probability that an operation is a write (the rest are reads).
    pub write_ratio: f64,
    /// Insert a `Settle` after this many operations (0 = only at the end).
    pub settle_every: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            ops_per_process: 20,
            write_ratio: 0.4,
            settle_every: 5,
            seed: 42,
        }
    }
}

impl WorkloadSpec {
    /// The settle policy this spec encodes.
    pub fn settle_policy(&self) -> SettlePolicy {
        if self.settle_every == 0 {
            SettlePolicy::AtEnd
        } else {
            SettlePolicy::Every(self.settle_every)
        }
    }
}

/// Generate a uniform random workload script compatible with `dist`: every
/// process only touches variables it replicates. Processes with an empty
/// replica set issue no operations.
pub fn generate(dist: &Distribution, spec: &WorkloadSpec) -> Vec<WorkloadOp> {
    generate_family_ops(
        dist,
        &WorkloadFamily::Uniform {
            write_ratio: spec.write_ratio,
        },
        spec.ops_per_process,
        spec.settle_policy(),
        spec.seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::run_script;
    use dsm::ProtocolKind;
    use histories::{check, Criterion};
    use simnet::SimConfig;

    #[test]
    fn generated_workloads_respect_the_distribution() {
        let dist = Distribution::ring_overlap(5);
        let ops = generate(&dist, &WorkloadSpec::default());
        for op in &ops {
            if let WorkloadOp::Write { proc, var, .. } | WorkloadOp::Read { proc, var } = op {
                assert!(dist.replicates(*proc, *var));
            }
        }
        assert!(ops.iter().any(|o| matches!(o, WorkloadOp::Settle)));
    }

    #[test]
    fn write_values_are_unique() {
        let dist = Distribution::full(4, 3);
        let ops = generate(
            &dist,
            &WorkloadSpec {
                ops_per_process: 30,
                write_ratio: 1.0,
                ..WorkloadSpec::default()
            },
        );
        let mut values = std::collections::BTreeSet::new();
        for op in &ops {
            if let WorkloadOp::Write { value, .. } = op {
                assert!(values.insert(*value), "duplicate value {value}");
            }
        }
        assert!(!values.is_empty());
    }

    #[test]
    fn workloads_are_reproducible_per_seed() {
        let dist = Distribution::random(6, 8, 3, 9);
        let spec = WorkloadSpec::default();
        assert_eq!(generate(&dist, &spec), generate(&dist, &spec));
        let other = WorkloadSpec {
            seed: 43,
            ..WorkloadSpec::default()
        };
        assert_ne!(generate(&dist, &spec), generate(&dist, &other));
    }

    #[test]
    fn settle_every_zero_only_settles_at_the_end() {
        let dist = Distribution::full(3, 2);
        let spec = WorkloadSpec {
            ops_per_process: 5,
            settle_every: 0,
            ..WorkloadSpec::default()
        };
        let ops = generate(&dist, &spec);
        let settles = ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Settle))
            .count();
        assert_eq!(settles, 1);
        assert!(matches!(ops.last(), Some(WorkloadOp::Settle)));
    }

    #[test]
    fn executed_histories_pass_the_protocol_criteria() {
        let dist = Distribution::ring_overlap(4);
        let spec = WorkloadSpec {
            ops_per_process: 6,
            write_ratio: 0.5,
            settle_every: 3,
            seed: 7,
        };
        let ops = generate(&dist, &spec);
        let pram = run_script(
            ProtocolKind::PramPartial,
            &dist,
            &ops,
            SimConfig::default(),
            true,
        );
        assert!(check(&pram.history, Criterion::Pram).consistent);
        let causal = run_script(
            ProtocolKind::CausalPartial,
            &dist,
            &ops,
            SimConfig::default(),
            true,
        );
        assert!(check(&causal.history, Criterion::Causal).consistent);
    }
}
