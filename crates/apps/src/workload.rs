//! Synthetic read/write workloads over arbitrary variable distributions.
//!
//! The efficiency experiments (E1–E3 in `DESIGN.md`) need workloads that
//! are independent of any particular application: every process repeatedly
//! reads and writes variables drawn from its own replica set. Written
//! values are globally unique so the recorded histories can be checked by
//! the `histories` crate's read-from inference.

use dsm::{ControlSummary, DsmSystem, ProtocolSpec};
use histories::{Distribution, History, ProcId, VarId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simnet::SimConfig;

/// One application-level operation of a workload script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadOp {
    /// `w_p(var)value`
    Write {
        /// Issuing process.
        proc: ProcId,
        /// Written variable.
        var: VarId,
        /// Written value (globally unique within the workload).
        value: i64,
    },
    /// `r_p(var)`
    Read {
        /// Issuing process.
        proc: ProcId,
        /// Read variable.
        var: VarId,
    },
    /// Deliver every in-flight message before continuing.
    Settle,
}

/// Parameters of the random workload generator.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Operations issued per process.
    pub ops_per_process: usize,
    /// Probability that an operation is a write (the rest are reads).
    pub write_ratio: f64,
    /// Insert a `Settle` after this many operations (0 = only at the end).
    pub settle_every: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            ops_per_process: 20,
            write_ratio: 0.4,
            settle_every: 5,
            seed: 42,
        }
    }
}

/// Generate a workload script compatible with `dist`: every process only
/// touches variables it replicates. Processes with an empty replica set
/// issue no operations.
pub fn generate(dist: &Distribution, spec: &WorkloadSpec) -> Vec<WorkloadOp> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut ops = Vec::new();
    let mut next_value = 1i64;
    let mut since_settle = 0usize;
    for round in 0..spec.ops_per_process {
        for p in 0..dist.process_count() {
            let vars: Vec<VarId> = dist.vars_of(ProcId(p)).iter().copied().collect();
            if vars.is_empty() {
                continue;
            }
            let var = vars[rng.gen_range(0..vars.len())];
            let op = if rng.gen_bool(spec.write_ratio) {
                let value = next_value;
                next_value += 1;
                WorkloadOp::Write {
                    proc: ProcId(p),
                    var,
                    value,
                }
            } else {
                WorkloadOp::Read {
                    proc: ProcId(p),
                    var,
                }
            };
            ops.push(op);
            since_settle += 1;
            if spec.settle_every > 0 && since_settle >= spec.settle_every {
                ops.push(WorkloadOp::Settle);
                since_settle = 0;
            }
        }
        let _ = round;
    }
    ops.push(WorkloadOp::Settle);
    ops
}

/// Measurements from executing a workload.
#[derive(Clone, Debug)]
pub struct WorkloadOutcome {
    /// The recorded history (empty if recording was disabled).
    pub history: History,
    /// Total messages sent.
    pub messages: u64,
    /// Total data bytes sent.
    pub data_bytes: u64,
    /// Total control bytes sent.
    pub control_bytes: u64,
    /// Per-node control accounting.
    pub control: ControlSummary,
    /// Application operations issued.
    pub operations: u64,
}

impl WorkloadOutcome {
    /// Control bytes per application operation.
    pub fn control_bytes_per_op(&self) -> f64 {
        if self.operations == 0 {
            0.0
        } else {
            self.control_bytes as f64 / self.operations as f64
        }
    }

    /// Messages per application operation.
    pub fn messages_per_op(&self) -> f64 {
        if self.operations == 0 {
            0.0
        } else {
            self.messages as f64 / self.operations as f64
        }
    }
}

/// Execute a workload script against a fresh `DsmSystem<P>`.
pub fn execute<P: ProtocolSpec>(
    dist: &Distribution,
    ops: &[WorkloadOp],
    config: SimConfig,
    record: bool,
) -> WorkloadOutcome {
    let mut dsm: DsmSystem<P> = DsmSystem::with_config(dist.clone(), config);
    if !record {
        dsm.disable_recording();
    }
    for op in ops {
        match *op {
            WorkloadOp::Write { proc, var, value } => {
                dsm.write(proc, var, value).expect("workload respects the distribution");
            }
            WorkloadOp::Read { proc, var } => {
                let _ = dsm.read(proc, var).expect("workload respects the distribution");
            }
            WorkloadOp::Settle => {
                dsm.settle();
            }
        }
    }
    dsm.settle();
    let stats = dsm.network_stats();
    WorkloadOutcome {
        history: dsm.history(),
        messages: stats.total_messages(),
        data_bytes: stats.total_data_bytes(),
        control_bytes: stats.total_control_bytes(),
        control: dsm.control_summary(),
        operations: dsm.operation_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm::{CausalFull, CausalPartial, PramPartial};
    use histories::{check, Criterion};

    #[test]
    fn generated_workloads_respect_the_distribution() {
        let dist = Distribution::ring_overlap(5);
        let ops = generate(&dist, &WorkloadSpec::default());
        for op in &ops {
            if let WorkloadOp::Write { proc, var, .. } | WorkloadOp::Read { proc, var } = op {
                assert!(dist.replicates(*proc, *var));
            }
        }
        assert!(ops.iter().any(|o| matches!(o, WorkloadOp::Settle)));
    }

    #[test]
    fn write_values_are_unique() {
        let dist = Distribution::full(4, 3);
        let ops = generate(
            &dist,
            &WorkloadSpec {
                ops_per_process: 30,
                write_ratio: 1.0,
                ..WorkloadSpec::default()
            },
        );
        let mut values = std::collections::BTreeSet::new();
        for op in &ops {
            if let WorkloadOp::Write { value, .. } = op {
                assert!(values.insert(*value), "duplicate value {value}");
            }
        }
        assert!(!values.is_empty());
    }

    #[test]
    fn workloads_are_reproducible_per_seed() {
        let dist = Distribution::random(6, 8, 3, 9);
        let spec = WorkloadSpec::default();
        assert_eq!(generate(&dist, &spec), generate(&dist, &spec));
        let other = WorkloadSpec {
            seed: 43,
            ..WorkloadSpec::default()
        };
        assert_ne!(generate(&dist, &spec), generate(&dist, &other));
    }

    #[test]
    fn executed_histories_pass_the_protocol_criteria() {
        let dist = Distribution::ring_overlap(4);
        let spec = WorkloadSpec {
            ops_per_process: 6,
            write_ratio: 0.5,
            settle_every: 3,
            seed: 7,
        };
        let ops = generate(&dist, &spec);
        let pram = execute::<PramPartial>(&dist, &ops, SimConfig::default(), true);
        assert!(check(&pram.history, Criterion::Pram).consistent);
        let causal = execute::<CausalPartial>(&dist, &ops, SimConfig::default(), true);
        assert!(check(&causal.history, Criterion::Causal).consistent);
    }

    #[test]
    fn control_cost_ordering_matches_the_paper() {
        let dist = Distribution::random(8, 12, 2, 3);
        let spec = WorkloadSpec {
            ops_per_process: 10,
            write_ratio: 0.5,
            settle_every: 4,
            seed: 5,
        };
        let ops = generate(&dist, &spec);
        let pram = execute::<PramPartial>(&dist, &ops, SimConfig::default(), false);
        let cpart = execute::<CausalPartial>(&dist, &ops, SimConfig::default(), false);
        let cfull = execute::<CausalFull>(&dist, &ops, SimConfig::default(), false);
        assert!(pram.control_bytes < cpart.control_bytes);
        assert!(pram.control_bytes < cfull.control_bytes);
        assert!(pram.messages_per_op() <= cpart.messages_per_op());
        assert!(pram.control_bytes_per_op() < cfull.control_bytes_per_op());
    }

    #[test]
    fn empty_workload_outcome_statistics() {
        let dist = Distribution::full(2, 1);
        let outcome = execute::<PramPartial>(&dist, &[], SimConfig::default(), true);
        assert_eq!(outcome.operations, 0);
        assert_eq!(outcome.control_bytes_per_op(), 0.0);
        assert_eq!(outcome.messages_per_op(), 0.0);
    }
}
