//! Asynchronous iterative fixed-point computation (Jacobi-style) over the
//! DSM.
//!
//! The paper (§5) cites Sinha's observation that *totally asynchronous
//! iterative methods* converge even on memories weaker than PRAM. This
//! module solves a diagonally dominant linear system `x = M·x + b` by
//! fixed-point iteration in which each process owns one component of `x`,
//! publishes it through the shared memory, and reads its neighbours'
//! components from whatever (possibly stale) values its local replicas
//! hold. Because the iteration map is a contraction, convergence tolerates
//! the staleness — this is the workload that stresses *weak* consistency
//! rather than ordering.
//!
//! Values are fixed-point scaled integers (scale 1e6) so the shared
//! variables stay `i64` like everything else in the DSM.

use dsm::{DynDsm, ProtocolKind};
use histories::{Distribution, ProcId, VarId};
use simnet::SimConfig;

/// Fixed-point scale for representing reals in shared `i64` variables.
pub const SCALE: i64 = 1_000_000;

/// A fixed-point iteration problem `x = M·x + b` with `‖M‖∞ < 1`.
#[derive(Clone, Debug, PartialEq)]
pub struct FixedPointProblem {
    /// Row-major iteration matrix `M` (n×n).
    pub m: Vec<f64>,
    /// The constant vector `b`.
    pub b: Vec<f64>,
}

impl FixedPointProblem {
    /// Number of unknowns.
    pub fn size(&self) -> usize {
        self.b.len()
    }

    /// Build a well-conditioned random problem: off-diagonal coefficients
    /// sum to at most `contraction < 1` per row.
    pub fn random(n: usize, contraction: f64, seed: u64) -> Self {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        assert!(n >= 1 && contraction > 0.0 && contraction < 1.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = vec![0.0; n * n];
        for i in 0..n {
            let mut weights: Vec<f64> = (0..n)
                .map(|j| if i == j { 0.0 } else { rng.gen_range(0.0..1.0) })
                .collect();
            let sum: f64 = weights.iter().sum();
            if sum > 0.0 {
                for w in &mut weights {
                    *w = *w / sum * contraction;
                }
            }
            for j in 0..n {
                m[i * n + j] = weights[j];
            }
        }
        let b = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        FixedPointProblem { m, b }
    }

    /// Sequential reference solution by synchronous iteration to tolerance.
    pub fn reference_solution(&self, tolerance: f64, max_iters: usize) -> Vec<f64> {
        let n = self.size();
        let mut x = vec![0.0; n];
        for _ in 0..max_iters {
            let mut next = vec![0.0; n];
            for (i, next_i) in next.iter_mut().enumerate() {
                let mut acc = self.b[i];
                for (j, x_j) in x.iter().enumerate() {
                    acc += self.m[i * n + j] * x_j;
                }
                *next_i = acc;
            }
            let delta = x
                .iter()
                .zip(&next)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            x = next;
            if delta < tolerance {
                break;
            }
        }
        x
    }
}

/// Result of a distributed fixed-point run.
#[derive(Clone, Debug)]
pub struct JacobiRun {
    /// The computed solution (un-scaled back to `f64`).
    pub solution: Vec<f64>,
    /// Rounds of asynchronous iteration executed.
    pub rounds: usize,
    /// Whether the tolerance was reached.
    pub converged: bool,
    /// Messages sent by the MCS.
    pub messages: u64,
    /// Control bytes sent by the MCS.
    pub control_bytes: u64,
}

/// The distribution: component `x_j` is replicated on its owner `p_j` and
/// on every process `p_i` whose row has a non-zero coefficient `M[i][j]`.
pub fn jacobi_distribution(problem: &FixedPointProblem) -> Distribution {
    let n = problem.size();
    let mut dist = Distribution::new(n, n);
    for i in 0..n {
        dist.assign(ProcId(i), VarId(i));
        for j in 0..n {
            if problem.m[i * n + j] != 0.0 {
                dist.assign(ProcId(i), VarId(j));
            }
        }
    }
    dist
}

/// Run the asynchronous fixed-point iteration over the protocol selected
/// by `kind`.
///
/// `settle_every` controls how much staleness the run tolerates: in-flight
/// updates are only delivered every that-many rounds, so larger values mean
/// processes iterate on older neighbour values (the totally-asynchronous
/// regime). Convergence is declared when every component moves by less than
/// `tolerance` in a round *after* a full delivery.
pub fn run_jacobi(
    kind: ProtocolKind,
    problem: &FixedPointProblem,
    tolerance: f64,
    max_rounds: usize,
    settle_every: usize,
    config: SimConfig,
) -> JacobiRun {
    let n = problem.size();
    assert!(settle_every >= 1);
    let dist = jacobi_distribution(problem);
    let mut dsm = DynDsm::with_config(kind, dist, config);
    dsm.disable_recording();

    // Initial estimates: 0.
    for i in 0..n {
        dsm.write(ProcId(i), VarId(i), 0).unwrap();
    }
    dsm.settle();

    let mut current = vec![0.0f64; n];
    let mut rounds = 0;
    let mut converged = false;
    while rounds < max_rounds {
        rounds += 1;
        // Convergence may only be declared on rounds that consumed freshly
        // delivered neighbour values; otherwise a process iterating on
        // frozen inputs reaches a spurious local fixed point immediately.
        let fresh_inputs = rounds == 1 || (rounds - 1) % settle_every == 0;
        let mut max_delta: f64 = 0.0;
        for (i, current_i) in current.iter_mut().enumerate() {
            let mut acc = problem.b[i];
            for j in 0..n {
                let coeff = problem.m[i * n + j];
                if coeff != 0.0 {
                    let raw = dsm.read(ProcId(i), VarId(j)).unwrap().as_int().unwrap_or(0);
                    acc += coeff * (raw as f64 / SCALE as f64);
                }
            }
            max_delta = max_delta.max((acc - *current_i).abs());
            *current_i = acc;
            dsm.write(ProcId(i), VarId(i), (acc * SCALE as f64) as i64)
                .unwrap();
        }
        if rounds % settle_every == 0 {
            dsm.settle();
        }
        if fresh_inputs && max_delta < tolerance {
            converged = true;
            break;
        }
    }
    dsm.settle();

    let stats = dsm.network_stats();
    JacobiRun {
        solution: current,
        rounds,
        converged,
        messages: stats.total_messages(),
        control_bytes: stats.total_control_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64], eps: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < eps)
    }

    #[test]
    fn reference_solution_solves_the_fixed_point() {
        let p = FixedPointProblem::random(5, 0.5, 1);
        let x = p.reference_solution(1e-9, 500);
        // Check residual: x ≈ Mx + b.
        for i in 0..5 {
            let mut acc = p.b[i];
            for (j, x_j) in x.iter().enumerate() {
                acc += p.m[i * 5 + j] * x_j;
            }
            assert!((acc - x[i]).abs() < 1e-6, "component {i}");
        }
    }

    #[test]
    fn distributed_jacobi_converges_to_the_reference() {
        let p = FixedPointProblem::random(6, 0.5, 2);
        let reference = p.reference_solution(1e-9, 500);
        let run = run_jacobi(
            ProtocolKind::PramPartial,
            &p,
            1e-7,
            400,
            1,
            SimConfig::default(),
        );
        assert!(run.converged, "should converge within the round budget");
        assert!(close(&run.solution, &reference, 1e-3));
        assert!(run.messages > 0);
    }

    #[test]
    fn staleness_slows_but_does_not_break_convergence() {
        let p = FixedPointProblem::random(5, 0.4, 3);
        let reference = p.reference_solution(1e-9, 500);
        let fresh = run_jacobi(
            ProtocolKind::PramPartial,
            &p,
            1e-7,
            600,
            1,
            SimConfig::default(),
        );
        let stale = run_jacobi(
            ProtocolKind::PramPartial,
            &p,
            1e-7,
            600,
            4,
            SimConfig::default(),
        );
        assert!(fresh.converged && stale.converged);
        assert!(close(&stale.solution, &reference, 1e-3));
        assert!(stale.rounds >= fresh.rounds);
    }

    #[test]
    fn causal_full_and_pram_partial_agree() {
        let p = FixedPointProblem::random(4, 0.5, 4);
        let a = run_jacobi(
            ProtocolKind::PramPartial,
            &p,
            1e-7,
            400,
            1,
            SimConfig::default(),
        );
        let b = run_jacobi(
            ProtocolKind::CausalFull,
            &p,
            1e-7,
            400,
            1,
            SimConfig::default(),
        );
        assert!(a.converged && b.converged);
        assert!(close(&a.solution, &b.solution, 1e-3));
    }

    #[test]
    fn distribution_covers_rows_with_nonzero_coefficients() {
        let p = FixedPointProblem::random(5, 0.5, 5);
        let d = jacobi_distribution(&p);
        for i in 0..5 {
            assert!(d.replicates(ProcId(i), VarId(i)));
            for j in 0..5 {
                if p.m[i * 5 + j] != 0.0 {
                    assert!(d.replicates(ProcId(i), VarId(j)));
                }
            }
        }
    }
}
