//! Pipelined dynamic programming over the DSM: longest common subsequence.
//!
//! Dynamic programming is the second family of applications Lipton &
//! Sandberg cite as solvable on a PRAM memory (paper §5): the DP table is
//! filled in a wavefront where each row has a single writer and each
//! process reads only the row written by its predecessor in the pipeline.
//! Process `i` computes rows `i, i + p, i + 2p, …` of the LCS table and the
//! reader of row `r` is always the owner of row `r + 1`, so the variable
//! distribution keeps every row on exactly two processes.

use dsm::{DynDsm, ProtocolKind};
use histories::{Distribution, ProcId, VarId};
use simnet::SimConfig;

/// Result of a distributed LCS run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LcsRun {
    /// The LCS length.
    pub length: i64,
    /// Messages sent by the MCS.
    pub messages: u64,
    /// Control bytes sent by the MCS.
    pub control_bytes: u64,
}

/// Sequential reference LCS length.
pub fn lcs_reference(a: &[u8], b: &[u8]) -> i64 {
    let mut prev = vec![0i64; b.len() + 1];
    let mut cur = vec![0i64; b.len() + 1];
    for &ca in a {
        for (j, &cb) in b.iter().enumerate() {
            cur[j + 1] = if ca == cb {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
        cur.fill(0);
    }
    prev[b.len()]
}

/// Variable id of DP cell `(row, col)` in a table with `cols` columns
/// (row 0 is the all-zero boundary row and is not shared).
fn cell_var(cols: usize, row: usize, col: usize) -> VarId {
    VarId((row - 1) * (cols + 1) + col)
}

/// Counter variable signalling that `row` is complete.
fn row_done_var(rows: usize, cols: usize, row: usize) -> VarId {
    VarId(rows * (cols + 1) + row - 1)
}

/// The distribution: row `r` (and its completion flag) lives on its writer
/// (process `(r-1) mod p`) and on the writer of row `r + 1`.
pub fn lcs_distribution(rows: usize, cols: usize, procs: usize) -> Distribution {
    let mut dist = Distribution::new(procs, rows * (cols + 1) + rows);
    for row in 1..=rows {
        let owner = ProcId((row - 1) % procs);
        let reader = if row < rows {
            Some(ProcId(row % procs))
        } else {
            None
        };
        for col in 0..=cols {
            dist.assign(owner, cell_var(cols, row, col));
            if let Some(r) = reader {
                dist.assign(r, cell_var(cols, row, col));
            }
        }
        dist.assign(owner, row_done_var(rows, cols, row));
        if let Some(r) = reader {
            dist.assign(r, row_done_var(rows, cols, row));
        }
    }
    dist
}

/// Run the distributed LCS of `a` and `b` over `procs` processes using the
/// protocol selected by `kind`.
pub fn run_lcs(kind: ProtocolKind, a: &[u8], b: &[u8], procs: usize, config: SimConfig) -> LcsRun {
    assert!(procs >= 1);
    assert!(!a.is_empty() && !b.is_empty(), "inputs must be non-empty");
    let rows = a.len();
    let cols = b.len();
    let dist = lcs_distribution(rows, cols, procs);
    let mut dsm = DynDsm::with_config(kind, dist, config);
    dsm.disable_recording();

    // Rows are processed in order; each row's owner reads the previous row
    // from its local replicas (delivered because the previous owner wrote
    // and settled before the flag was observed).
    let mut last = 0i64;
    for row in 1..=rows {
        let owner = ProcId((row - 1) % procs);
        if row > 1 {
            // Wait for the previous row (spin on the completion flag).
            let flag = row_done_var(rows, cols, row - 1);
            let mut guard = 0;
            while dsm.read(owner, flag).unwrap().as_int() != Some(1) {
                dsm.settle();
                guard += 1;
                assert!(guard < 4, "previous row must become visible");
            }
        }
        for col in 0..=cols {
            let value = if col == 0 {
                0
            } else {
                let up = if row == 1 {
                    0
                } else {
                    dsm.read(owner, cell_var(cols, row - 1, col))
                        .unwrap()
                        .as_int()
                        .unwrap()
                };
                let up_left = if row == 1 {
                    0
                } else {
                    dsm.read(owner, cell_var(cols, row - 1, col - 1))
                        .unwrap()
                        .as_int()
                        .unwrap()
                };
                let left = dsm
                    .read(owner, cell_var(cols, row, col - 1))
                    .unwrap()
                    .as_int()
                    .unwrap();
                if a[row - 1] == b[col - 1] {
                    up_left + 1
                } else {
                    up.max(left)
                }
            };
            dsm.write(owner, cell_var(cols, row, col), value).unwrap();
            if row == rows && col == cols {
                last = value;
            }
        }
        dsm.write(owner, row_done_var(rows, cols, row), 1).unwrap();
        dsm.settle();
    }

    let stats = dsm.network_stats();
    LcsRun {
        length: last,
        messages: stats.total_messages(),
        control_bytes: stats.total_control_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_lcs_known_cases() {
        assert_eq!(lcs_reference(b"ABCBDAB", b"BDCABA"), 4);
        assert_eq!(lcs_reference(b"AAAA", b"AA"), 2);
        assert_eq!(lcs_reference(b"ABC", b"XYZ"), 0);
        assert_eq!(lcs_reference(b"X", b"X"), 1);
    }

    #[test]
    fn distributed_lcs_matches_reference() {
        let a = b"ABCBDABXY";
        let b = b"BDCABAYX";
        let run = run_lcs(ProtocolKind::PramPartial, a, b, 3, SimConfig::default());
        assert_eq!(run.length, lcs_reference(a, b));
        assert!(run.messages > 0);
    }

    #[test]
    fn distributed_lcs_single_process() {
        let a = b"GATTACA";
        let b = b"TAGACCA";
        let run = run_lcs(ProtocolKind::PramPartial, a, b, 1, SimConfig::default());
        assert_eq!(run.length, lcs_reference(a, b));
    }

    #[test]
    fn pram_partial_beats_causal_partial_on_control_bytes() {
        let a = b"ABCBDABAB";
        let b = b"BDCABABAB";
        let pram = run_lcs(ProtocolKind::PramPartial, a, b, 4, SimConfig::default());
        let causal = run_lcs(ProtocolKind::CausalPartial, a, b, 4, SimConfig::default());
        assert_eq!(pram.length, causal.length);
        assert!(pram.control_bytes < causal.control_bytes);
    }

    #[test]
    fn distribution_keeps_each_row_on_at_most_two_processes() {
        let d = lcs_distribution(6, 5, 3);
        for row in 1..=6 {
            for col in 0..=5 {
                let replicas = d.replicas_of(cell_var(5, row, col));
                assert!(replicas.len() <= 2, "row {row} col {col}: {replicas:?}");
                assert!(replicas.contains(&ProcId((row - 1) % 3)));
            }
        }
    }
}
