//! Distributed Bellman-Ford over a partially replicated PRAM memory
//! (paper §6.1, Figures 7–9).
//!
//! Each network node `i` runs an application process `ap_i` that repeatedly
//! recomputes its tentative distance
//! `x_i := min_{j ∈ Γ⁻¹(i)} (x_j + w(j, i))`
//! and advances its iteration counter `k_i`. The counters act as a weak
//! barrier: a process starts iteration `k` only once every predecessor's
//! counter has reached `k` (line 6 of Figure 7). Because every shared
//! variable (`x_i`, `k_i`) has a **single writer** and each reader only
//! needs that writer's updates in program order, PRAM consistency is
//! sufficient for both safety and liveness — and the variable distribution
//! of §6.1 (a process replicates only its own and its predecessors'
//! variables) makes partial replication effective.
//!
//! The driver below runs the computation over any [`ProtocolKind`] chosen
//! at runtime, so the benchmarks can compare the PRAM-partial deployment
//! the paper advocates against causal-full / causal-partial / sequencer
//! deployments on the same workload without monomorphizing one driver per
//! protocol.

use crate::graphs::{Network, INFINITY};
use dsm::{DynDsm, ProtocolKind};
use histories::{Distribution, ProcId, Value, VarId};
use simnet::SimConfig;

/// Result of one distributed run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BellmanFordRun {
    /// Final distance estimates, one per node (`INFINITY` if unreachable).
    pub distances: Vec<i64>,
    /// Scheduler rounds executed before every process finished.
    pub rounds: usize,
    /// Whether every process completed its `N` iterations.
    pub converged: bool,
    /// Total messages sent by the MCS.
    pub messages: u64,
    /// Total protocol control bytes sent by the MCS.
    pub control_bytes: u64,
    /// Total data bytes sent by the MCS.
    pub data_bytes: u64,
    /// Application operations issued (reads + writes).
    pub operations: u64,
}

/// The variable ids used by the computation: `x_i` is `VarId(i)`, `k_i` is
/// `VarId(n + i)`.
pub fn distance_var(i: usize) -> VarId {
    VarId(i)
}

/// The iteration-counter variable of node `i` in an `n`-node network.
pub fn counter_var(n: usize, i: usize) -> VarId {
    VarId(n + i)
}

/// The variable distribution of §6.1: process `i` replicates `x_h` and
/// `k_h` for `h = i` and for every predecessor `h ∈ Γ⁻¹(i)`.
pub fn bellman_ford_distribution(net: &Network) -> Distribution {
    let n = net.node_count();
    let mut dist = Distribution::new(n, 2 * n);
    for i in 0..n {
        dist.assign(ProcId(i), distance_var(i));
        dist.assign(ProcId(i), counter_var(n, i));
        for h in net.predecessors(i) {
            dist.assign(ProcId(i), distance_var(h));
            dist.assign(ProcId(i), counter_var(n, h));
        }
    }
    dist
}

fn value_or_infinity(v: Value) -> i64 {
    v.as_int().unwrap_or(INFINITY)
}

/// Run the distributed Bellman-Ford of Figure 7 from `source` over the MCS
/// protocol selected by `kind`.
///
/// The scheduler emulates the per-process polling loop: in every round each
/// process whose barrier condition holds executes one iteration (lines 6–8
/// of Figure 7), then all in-flight updates are delivered. A process stops
/// after `N` iterations; the run aborts (with `converged = false`) if it
/// exceeds `4·N + 8` rounds, which cannot happen with reliable delivery.
pub fn run_bellman_ford(
    kind: ProtocolKind,
    net: &Network,
    source: usize,
    config: SimConfig,
) -> BellmanFordRun {
    let n = net.node_count();
    assert!(source < n, "source out of range");
    let dist = bellman_ford_distribution(net);
    let mut dsm = DynDsm::with_config(kind, dist, config);

    // Line 1-4 of Figure 7: initialize k_i and x_i.
    for i in 0..n {
        let x0 = if i == source { 0 } else { INFINITY };
        dsm.write(ProcId(i), distance_var(i), x0)
            .expect("process replicates its own distance");
        dsm.write(ProcId(i), counter_var(n, i), 0)
            .expect("process replicates its own counter");
    }
    dsm.settle();

    let mut k = vec![0i64; n];
    let max_rounds = 4 * n + 8;
    let mut rounds = 0;
    while k.iter().any(|&ki| ki < n as i64) && rounds < max_rounds {
        rounds += 1;
        for (i, ki) in k.iter_mut().enumerate() {
            if *ki >= n as i64 {
                continue;
            }
            // Line 6: wait until every predecessor's counter has caught up.
            let preds = net.predecessors(i);
            let ready = preds.iter().all(|&h| {
                // A counter that has never been received reads as ⊥ and
                // counts as "not yet started" (-1).
                let kh = dsm
                    .read(ProcId(i), counter_var(n, h))
                    .ok()
                    .and_then(Value::as_int)
                    .unwrap_or(-1);
                kh >= *ki
            });
            if !ready {
                continue;
            }
            // Line 7: recompute x_i from the predecessors' current estimates.
            if i != source {
                let mut best = INFINITY;
                for &h in &preds {
                    let xh = value_or_infinity(dsm.read(ProcId(i), distance_var(h)).unwrap());
                    best = best.min(xh.saturating_add(net.weight(h, i)));
                }
                dsm.write(ProcId(i), distance_var(i), best).unwrap();
            }
            // Line 8: advance the iteration counter.
            *ki += 1;
            dsm.write(ProcId(i), counter_var(n, i), *ki).unwrap();
        }
        dsm.settle();
    }

    let distances = (0..n)
        .map(|i| value_or_infinity(dsm.peek(ProcId(i), distance_var(i))))
        .collect();
    let stats = dsm.network_stats();
    BellmanFordRun {
        distances,
        rounds,
        converged: k.iter().all(|&ki| ki >= n as i64),
        messages: stats.total_messages(),
        control_bytes: stats.total_control_bytes(),
        data_bytes: stats.total_data_bytes(),
        operations: dsm.operation_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::shortest_paths_reference;

    #[test]
    fn distribution_matches_the_papers_example() {
        let net = Network::fig8();
        let d = bellman_ford_distribution(&net);
        let n = 5;
        // X_1 = {x1, k1}
        assert_eq!(d.vars_of(ProcId(0)).len(), 2);
        // X_2 = {x1, x2, x3, k1, k2, k3}
        let x2: Vec<VarId> = d.vars_of(ProcId(1)).iter().copied().collect();
        assert!(x2.contains(&distance_var(0)));
        assert!(x2.contains(&distance_var(1)));
        assert!(x2.contains(&distance_var(2)));
        assert!(x2.contains(&counter_var(n, 0)));
        assert_eq!(x2.len(), 6);
        // X_5 = {x3, x4, x5, k3, k4, k5}
        let x5 = d.vars_of(ProcId(4));
        assert_eq!(x5.len(), 6);
        assert!(!x5.contains(&distance_var(0)));
    }

    #[test]
    fn fig8_distances_match_the_reference_under_pram_partial() {
        let net = Network::fig8();
        let run = run_bellman_ford(ProtocolKind::PramPartial, &net, 0, SimConfig::default());
        assert!(run.converged);
        assert_eq!(run.distances, shortest_paths_reference(&net, 0));
        assert_eq!(run.distances, vec![0, 2, 1, 3, 4]);
        assert!(run.messages > 0);
    }

    #[test]
    fn all_protocols_compute_the_same_distances() {
        let net = Network::fig8();
        let reference = shortest_paths_reference(&net, 0);
        for kind in ProtocolKind::ALL {
            let run = run_bellman_ford(kind, &net, 0, SimConfig::default());
            assert_eq!(run.distances, reference, "{kind}");
        }
    }

    #[test]
    fn pram_partial_sends_less_control_than_causal_variants() {
        let net = Network::fig8();
        let pram = run_bellman_ford(ProtocolKind::PramPartial, &net, 0, SimConfig::default());
        let cfull = run_bellman_ford(ProtocolKind::CausalFull, &net, 0, SimConfig::default());
        let cpart = run_bellman_ford(ProtocolKind::CausalPartial, &net, 0, SimConfig::default());
        assert!(
            pram.control_bytes < cfull.control_bytes,
            "pram {} vs causal-full {}",
            pram.control_bytes,
            cfull.control_bytes
        );
        assert!(
            pram.control_bytes < cpart.control_bytes,
            "pram {} vs causal-partial {}",
            pram.control_bytes,
            cpart.control_bytes
        );
        assert!(pram.messages < cfull.messages);
    }

    #[test]
    fn larger_random_networks_converge_to_the_reference() {
        for seed in [1, 2, 3] {
            let net = Network::random_reachable(9, 12, 7, seed);
            let run = run_bellman_ford(ProtocolKind::PramPartial, &net, 0, SimConfig::default());
            assert!(run.converged, "seed {seed}");
            assert_eq!(
                run.distances,
                shortest_paths_reference(&net, 0),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn unreachable_nodes_keep_infinite_distance() {
        let mut net = Network::new(4);
        net.add_edge(0, 1, 2);
        net.add_edge(1, 2, 2);
        // Node 3 is isolated.
        let run = run_bellman_ford(ProtocolKind::PramPartial, &net, 0, SimConfig::default());
        assert!(run.converged);
        assert_eq!(run.distances, vec![0, 2, 4, INFINITY]);
    }

    #[test]
    fn sparse_physical_topologies_compute_the_same_distances() {
        // The computation graph (Fig. 8) stays the same; only the physical
        // network the MCS runs over changes. Every variable has a single
        // writer, so the overlay-routed runs reproduce the mesh exactly.
        let net = Network::fig8();
        let reference = shortest_paths_reference(&net, 0);
        let mesh = run_bellman_ford(ProtocolKind::PramPartial, &net, 0, SimConfig::default());
        for topology in [
            simnet::Topology::ring(5),
            simnet::Topology::star(5),
            simnet::Topology::line(5),
        ] {
            let config = SimConfig {
                topology: Some(topology.clone()),
                ..SimConfig::default()
            };
            let run = run_bellman_ford(ProtocolKind::PramPartial, &net, 0, config);
            assert!(run.converged, "{topology:?}");
            assert_eq!(run.distances, reference, "{topology:?}");
            assert_eq!(run.operations, mesh.operations, "{topology:?}");
            // Relaying pays on the wire but never changes the result.
            assert!(run.messages >= mesh.messages, "{topology:?}");
        }
    }

    #[test]
    fn ring_network_distances() {
        let net = Network::ring(7);
        let run = run_bellman_ford(ProtocolKind::PramPartial, &net, 0, SimConfig::default());
        assert_eq!(run.distances, shortest_paths_reference(&net, 0));
        assert!(run.rounds <= 4 * 7 + 8);
        assert!(run.operations > 0);
    }
}
