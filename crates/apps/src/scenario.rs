//! The scenario engine: one driver for every protocol comparison.
//!
//! The paper's efficiency argument is comparative — the *same* workload
//! run under sequential / causal-full / causal-partial / PRAM protocols,
//! with control bytes compared across variable distributions. A
//! [`Scenario`] bundles everything such a comparison point needs:
//!
//! * a [`DistributionFamily`] (which process replicates which variable),
//! * a [`WorkloadFamily`] (how processes access their replicas),
//! * a network model ([`LatencyModel`] plus an optional [`Topology`]),
//! * a [`SettlePolicy`] (how often in-flight updates are delivered).
//!
//! [`run_scenario`] executes a scenario under any [`ProtocolKind`] chosen
//! at runtime (via [`DynDsm`]) and returns a unified [`RunReport`]:
//! recorded history, network statistics, control-information accounting,
//! and elapsed virtual time. Benchmarks, examples, and integration tests
//! all drive their comparisons through this one engine instead of
//! monomorphizing a helper per protocol.

use crate::workload::WorkloadOp;
use dsm::{ControlSummary, DynDsm, ProtocolKind};
use histories::{Distribution, History, ProcId, VarId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use simnet::{
    DeliveryMode, ExecBackend, FaultPlan, LatencyModel, NetworkStats, PoolStats, SimConfig,
    SimDuration, SimTime, Topology,
};

/// The variable-distribution families the experiments sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum DistributionFamily {
    /// Every process replicates every variable.
    Full,
    /// Each variable lives on exactly one process; nothing is shared.
    DisjointBlocks,
    /// Process `i` replicates variables `i` and `i+1 (mod n)`: every
    /// adjacent pair shares one variable, making long hoops plentiful.
    RingOverlap,
    /// Every variable is replicated on `replicas` random processes.
    Random {
        /// Replicas per variable (clamped to the process count).
        replicas: usize,
    },
    /// An explicitly provided distribution (escape hatch for app-shaped
    /// replica sets like Bellman-Ford's).
    Custom(Distribution),
}

impl DistributionFamily {
    /// Build the concrete distribution for `procs` processes and `vars`
    /// variables ([`DistributionFamily::RingOverlap`] ignores `vars`;
    /// [`DistributionFamily::Custom`] ignores everything).
    pub fn build(&self, procs: usize, vars: usize, seed: u64) -> Distribution {
        match self {
            DistributionFamily::Full => Distribution::full(procs, vars),
            DistributionFamily::DisjointBlocks => Distribution::disjoint_blocks(procs, vars),
            DistributionFamily::RingOverlap => Distribution::ring_overlap(procs),
            DistributionFamily::Random { replicas } => {
                Distribution::random(procs, vars, (*replicas).clamp(1, procs), seed)
            }
            DistributionFamily::Custom(d) => d.clone(),
        }
    }

    /// Short label used in tables and benchmark ids.
    pub fn label(&self) -> String {
        match self {
            DistributionFamily::Full => "full".into(),
            DistributionFamily::DisjointBlocks => "disjoint-blocks".into(),
            DistributionFamily::RingOverlap => "ring-overlap".into(),
            DistributionFamily::Random { replicas } => format!("random-{replicas}"),
            DistributionFamily::Custom(_) => "custom".into(),
        }
    }
}

/// The access-pattern families workloads are generated from.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkloadFamily {
    /// Every process picks a uniformly random variable from its replica
    /// set; each access is a write with probability `write_ratio`.
    Uniform {
        /// Probability that an access is a write.
        write_ratio: f64,
    },
    /// Like `Uniform`, but with probability `hot_bias` the process touches
    /// the *hot* variable of its replica set (the smallest id) instead of
    /// a uniformly drawn one — a skewed, contended access pattern.
    Hotspot {
        /// Probability that an access is a write.
        write_ratio: f64,
        /// Probability of hitting the hot variable.
        hot_bias: f64,
    },
    /// Single-writer pipelines: the smallest-id replica of a variable is
    /// its *producer* and always writes it; every other replica only
    /// reads. This is the regime (one writer per variable, FIFO-ordered
    /// consumption) where PRAM partial replication shines.
    ProducerConsumer,
    /// Every process works almost exclusively on the variables it *owns*
    /// (those whose smallest-id replica it is), occasionally reading a
    /// foreign replica — the sharded / partition-per-node regime.
    PartitionLocal {
        /// Probability that an access is a write.
        write_ratio: f64,
    },
}

impl WorkloadFamily {
    /// Short label used in tables and benchmark ids.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadFamily::Uniform { .. } => "uniform",
            WorkloadFamily::Hotspot { .. } => "hotspot",
            WorkloadFamily::ProducerConsumer => "producer-consumer",
            WorkloadFamily::PartitionLocal { .. } => "partition-local",
        }
    }
}

/// When the generated script delivers in-flight updates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SettlePolicy {
    /// Insert a settle point after every `n` operations (and at the end).
    Every(usize),
    /// Only settle once, after the whole script has been issued.
    AtEnd,
}

/// The network-topology families the experiments sweep. A scenario's
/// topology is built over its process count; anything sparser than the
/// full mesh is served by the overlay routing layer (messages relayed over
/// BFS shortest paths), so every protocol runs on every family.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TopologyFamily {
    /// Every process pair directly linked (the paper's implicit model);
    /// sends are direct, no routing.
    FullMesh,
    /// A bidirectional ring.
    Ring,
    /// The most-square `r × c` grid over the process count.
    Grid,
    /// A hub-and-leaves star (node 0 is the hub).
    Star,
    /// A line (path) `0 — 1 — … — n-1`.
    Line,
    /// An explicitly provided topology (escape hatch for app-shaped
    /// communication graphs).
    Custom(Topology),
}

impl TopologyFamily {
    /// Build the concrete topology for `procs` processes
    /// ([`TopologyFamily::Custom`] ignores `procs`).
    pub fn build(&self, procs: usize) -> Topology {
        match self {
            TopologyFamily::FullMesh => Topology::full_mesh(procs),
            TopologyFamily::Ring => Topology::ring(procs),
            TopologyFamily::Grid => Topology::grid_of(procs),
            TopologyFamily::Star => Topology::star(procs),
            TopologyFamily::Line => Topology::line(procs),
            TopologyFamily::Custom(t) => t.clone(),
        }
    }

    /// Short label used in tables and benchmark ids.
    pub fn label(&self) -> &'static str {
        match self {
            TopologyFamily::FullMesh => "mesh",
            TopologyFamily::Ring => "ring",
            TopologyFamily::Grid => "grid",
            TopologyFamily::Star => "star",
            TopologyFamily::Line => "line",
            TopologyFamily::Custom(_) => "custom",
        }
    }
}

/// The fault families the experiments sweep. Faults live beneath the
/// protocols (the simulator's channels and delivery path), so every
/// protocol runs under every family; the differential tests pin that
/// link faults never change what is delivered, and that crash-restart
/// recovers the state a never-crashed node would hold.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultFamily {
    /// Reliable channels, no outages — the paper's model (the default;
    /// runs are bit-identical to the pre-fault engine).
    None,
    /// Every transmission is dropped (and retransmitted) with probability
    /// 0.2, independently per link attempt.
    Lossy,
    /// Every transmission is duplicated with probability 0.2; the
    /// receiver's link layer discards the second copy.
    Duplicating,
    /// One process (the highest-id one) crashes a third of the way
    /// through the script and restarts from its persisted replica
    /// snapshot at two thirds, running its catch-up handshake.
    CrashRestart,
}

impl FaultFamily {
    /// Short label used in tables and benchmark ids.
    pub fn label(&self) -> &'static str {
        match self {
            FaultFamily::None => "none",
            FaultFamily::Lossy => "lossy",
            FaultFamily::Duplicating => "duplicating",
            FaultFamily::CrashRestart => "crash-restart",
        }
    }

    /// The link-level fault plan of this family (crash windows are driven
    /// at the script level by [`CrashSchedule`], not by the plan).
    pub fn fault_plan(&self, seed: u64) -> FaultPlan {
        let seed = seed ^ 0xFA17_5EED;
        match self {
            FaultFamily::None | FaultFamily::CrashRestart => FaultPlan::default(),
            FaultFamily::Lossy => FaultPlan::lossy(0.2, seed),
            FaultFamily::Duplicating => FaultPlan::duplicating(0.2, seed),
        }
    }

    /// The scripted crash of this family for a script of `ops` over
    /// `procs` processes: the highest-id process goes down before the
    /// op at one third of the script and restarts before the op at two
    /// thirds. `None` for fault families without crashes, for scripts
    /// too short to fit a window, and for single-process systems.
    pub fn crash_schedule(&self, ops: &[WorkloadOp], procs: usize) -> Option<CrashSchedule> {
        if *self != FaultFamily::CrashRestart || procs < 2 || ops.len() < 3 {
            return None;
        }
        Some(CrashSchedule {
            proc: ProcId(procs - 1),
            crash_before_op: ops.len() / 3,
            restart_before_op: 2 * ops.len() / 3,
        })
    }
}

/// A scripted node outage: `proc` crashes before the `crash_before_op`-th
/// operation of the script and restarts (snapshot restore + catch-up
/// handshake + recovery settle) before the `restart_before_op`-th.
/// Operations issued by the crashed process inside the window are skipped
/// — a down process executes nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSchedule {
    /// The process that crashes.
    pub proc: ProcId,
    /// Script index before which the crash happens.
    pub crash_before_op: usize,
    /// Script index before which the restart happens.
    pub restart_before_op: usize,
}

/// Short label for a latency model, used in tables and benchmark ids.
pub fn latency_label(model: &LatencyModel) -> &'static str {
    match model {
        LatencyModel::Constant(_) => "constant",
        LatencyModel::Uniform { .. } => "uniform-jitter",
        LatencyModel::PerByte { .. } => "per-byte",
        LatencyModel::Distance { .. } => "distance",
    }
}

/// The distribution families of the standard sweep (shared by the
/// `scenario_matrix` bench, the `scenario_tour` example, and
/// `bench::scenario_matrix`, so the matrix stays consistent everywhere).
pub fn standard_distributions() -> Vec<DistributionFamily> {
    vec![
        DistributionFamily::Random { replicas: 2 },
        DistributionFamily::RingOverlap,
        DistributionFamily::Full,
    ]
}

/// The workload families of the standard sweep.
pub fn standard_workloads() -> Vec<WorkloadFamily> {
    vec![
        WorkloadFamily::Uniform { write_ratio: 0.5 },
        WorkloadFamily::Hotspot {
            write_ratio: 0.5,
            hot_bias: 0.8,
        },
        WorkloadFamily::ProducerConsumer,
        WorkloadFamily::PartitionLocal { write_ratio: 0.5 },
    ]
}

/// The topology families of the standard sweep.
pub fn standard_topologies() -> Vec<TopologyFamily> {
    vec![
        TopologyFamily::FullMesh,
        TopologyFamily::Ring,
        TopologyFamily::Grid,
        TopologyFamily::Star,
    ]
}

/// The delivery modes of the standard sweep (baseline unicast/unbatched
/// first; see [`DeliveryMode`]).
pub fn standard_deliveries() -> Vec<DeliveryMode> {
    DeliveryMode::ALL.to_vec()
}

/// The fault families of the standard sweep (fault-free baseline first).
pub fn standard_faults() -> Vec<FaultFamily> {
    vec![
        FaultFamily::None,
        FaultFamily::Lossy,
        FaultFamily::Duplicating,
        FaultFamily::CrashRestart,
    ]
}

/// The latency models of the standard sweep.
pub fn standard_latencies() -> Vec<LatencyModel> {
    vec![
        LatencyModel::default(),
        LatencyModel::Uniform {
            min: SimDuration::from_micros(1),
            max: SimDuration::from_micros(100),
        },
        LatencyModel::Distance {
            base: SimDuration::from_micros(2),
            per_unit: SimDuration::from_micros(4),
        },
    ]
}

/// A complete comparison point: distribution, workload, network, delivery.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name (used in reports).
    pub name: String,
    /// Which process replicates which variable.
    pub distribution: DistributionFamily,
    /// Number of processes.
    pub processes: usize,
    /// Number of shared variables.
    pub variables: usize,
    /// How processes access their replicas.
    pub workload: WorkloadFamily,
    /// Accesses issued per process.
    pub ops_per_process: usize,
    /// How often in-flight updates are delivered.
    pub settle: SettlePolicy,
    /// Channel latency model.
    pub latency: LatencyModel,
    /// Network topology family, built over `processes` nodes. Sparse
    /// families run over the overlay routing layer.
    pub topology: TopologyFamily,
    /// Wire delivery mode: tree multicast for identical-payload fan-outs
    /// and/or control-record batching. The default (unicast, unbatched)
    /// reproduces the classical wire format exactly.
    pub delivery: DeliveryMode,
    /// Fault family: link drop/duplication schedules and/or a scripted
    /// crash-restart. The default ([`FaultFamily::None`]) is the paper's
    /// reliable model, bit-identical to the pre-fault engine.
    pub faults: FaultFamily,
    /// Execution backend: the deterministic event-driven simulator (the
    /// default — every other scenario dimension composes with it) or the
    /// threaded backend, which hosts each process on an OS thread. The
    /// threaded backend supports every topology and delivery mode but
    /// stays fault-free (construction fails with
    /// [`dsm::DsmError::Unsupported`] on fault scenarios).
    #[serde(default)]
    pub backend: ExecBackend,
    /// Seed for distribution construction, workload generation, and
    /// channel jitter.
    pub seed: u64,
    /// Whether to record the history for offline consistency checking.
    pub record: bool,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            name: "default".into(),
            distribution: DistributionFamily::Random { replicas: 2 },
            processes: 8,
            variables: 16,
            workload: WorkloadFamily::Uniform { write_ratio: 0.5 },
            ops_per_process: 8,
            settle: SettlePolicy::Every(6),
            latency: LatencyModel::default(),
            topology: TopologyFamily::FullMesh,
            delivery: DeliveryMode::default(),
            faults: FaultFamily::None,
            backend: ExecBackend::Simnet,
            seed: 42,
            record: false,
        }
    }
}

impl Scenario {
    /// The concrete variable distribution of this scenario.
    pub fn build_distribution(&self) -> Distribution {
        self.distribution
            .build(self.processes, self.variables, self.seed)
    }

    /// The simulator configuration of this scenario.
    ///
    /// A [`TopologyFamily::FullMesh`] scenario leaves `config.topology`
    /// unset (the runtime's full-mesh default, direct sends); anything
    /// else builds the concrete topology, which the transport serves via
    /// overlay routing.
    pub fn sim_config(&self) -> SimConfig {
        let topology = match &self.topology {
            TopologyFamily::FullMesh => None,
            family => Some(family.build(self.processes)),
        };
        SimConfig {
            latency: self.latency.clone(),
            seed: self.seed ^ 0xD5_0C0DE,
            topology,
            delivery: self.delivery,
            faults: self.faults.fault_plan(self.seed),
            ..SimConfig::default()
        }
    }

    /// Generate the workload script for `dist` (usually
    /// [`Scenario::build_distribution`]). Written values are globally
    /// unique so read-from inference is unambiguous; every process only
    /// touches variables it replicates.
    pub fn generate_ops(&self, dist: &Distribution) -> Vec<WorkloadOp> {
        generate_family_ops(
            dist,
            &self.workload,
            self.ops_per_process,
            self.settle,
            self.seed,
        )
    }

    /// A compact label identifying the scenario's coordinates. The
    /// backend segment sits *before* the fault segment: sweep baselining
    /// strips the trailing fault segment to key fault siblings together
    /// (see the `scenario_tour` example), and that convention must keep
    /// working with the backend axis in the label.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}/{}/{}",
            self.distribution.label(),
            self.workload.label(),
            latency_label(&self.latency),
            self.topology.label(),
            self.delivery.label(),
            self.backend.label(),
            self.faults.label()
        )
    }
}

/// Generate a workload script from a family (see [`Scenario::generate_ops`]).
pub fn generate_family_ops(
    dist: &Distribution,
    family: &WorkloadFamily,
    ops_per_process: usize,
    settle: SettlePolicy,
    seed: u64,
) -> Vec<WorkloadOp> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5CEA_A210);
    let mut ops = Vec::new();
    let mut next_value = 1i64;
    let mut since_settle = 0usize;
    // Precompute per-process replica sets and ownership (the smallest-id
    // replica of a variable is its owner).
    let replica_vars: Vec<Vec<VarId>> = (0..dist.process_count())
        .map(|p| dist.vars_of(ProcId(p)).iter().copied().collect())
        .collect();
    let owned_vars: Vec<Vec<VarId>> = (0..dist.process_count())
        .map(|p| {
            replica_vars[p]
                .iter()
                .copied()
                .filter(|&x| dist.replicas_of(x).iter().next() == Some(&ProcId(p)))
                .collect()
        })
        .collect();

    for _round in 0..ops_per_process {
        for p in 0..dist.process_count() {
            let proc = ProcId(p);
            let vars = &replica_vars[p];
            if vars.is_empty() {
                continue;
            }
            let uniform_var = vars[rng.gen_range(0..vars.len())];
            let op = match *family {
                WorkloadFamily::Uniform { write_ratio } => access(
                    proc,
                    uniform_var,
                    rng.gen_bool(write_ratio),
                    &mut next_value,
                ),
                WorkloadFamily::Hotspot {
                    write_ratio,
                    hot_bias,
                } => {
                    let var = if rng.gen_bool(hot_bias) {
                        vars[0]
                    } else {
                        uniform_var
                    };
                    access(proc, var, rng.gen_bool(write_ratio), &mut next_value)
                }
                WorkloadFamily::ProducerConsumer => {
                    let is_producer = owned_vars[p].contains(&uniform_var);
                    access(proc, uniform_var, is_producer, &mut next_value)
                }
                WorkloadFamily::PartitionLocal { write_ratio } => {
                    let owned = &owned_vars[p];
                    if !owned.is_empty() && !rng.gen_bool(0.1) {
                        let var = owned[rng.gen_range(0..owned.len())];
                        access(proc, var, rng.gen_bool(write_ratio), &mut next_value)
                    } else {
                        // Foreign (or ownerless) accesses are always reads:
                        // writes never leave the process's own partition.
                        access(proc, uniform_var, false, &mut next_value)
                    }
                }
            };
            ops.push(op);
            since_settle += 1;
            if let SettlePolicy::Every(n) = settle {
                if n > 0 && since_settle >= n {
                    ops.push(WorkloadOp::Settle);
                    since_settle = 0;
                }
            }
        }
    }
    ops.push(WorkloadOp::Settle);
    ops
}

fn access(proc: ProcId, var: VarId, write: bool, next_value: &mut i64) -> WorkloadOp {
    if write {
        let value = *next_value;
        *next_value += 1;
        WorkloadOp::Write { proc, var, value }
    } else {
        WorkloadOp::Read { proc, var }
    }
}

/// The unified measurement record every driver returns.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Protocol the run used.
    pub protocol: ProtocolKind,
    /// The recorded history (empty if recording was disabled).
    pub history: History,
    /// Per-link / per-node network statistics.
    pub network: NetworkStats,
    /// Per-node control-information accounting.
    pub control: ControlSummary,
    /// Application operations issued.
    pub operations: u64,
    /// Virtual time at the end of the run.
    pub virtual_time: SimTime,
    /// Transit envelopes forwarded by intermediate nodes (0 on a direct
    /// full mesh; the overlay's relaying cost on sparse topologies).
    pub forwarded: u64,
    /// Total simulator events (deliveries + timers) processed — the work
    /// unit the scaling sweeps report throughput in.
    pub events: u64,
    /// Buffer-pool hit/miss accounting: the event scheduler's pools on
    /// simnet, the per-worker handler-context pools (merged at the last
    /// settle) on the threaded free-running backend, and the replay
    /// oracle's pools in threaded replay mode.
    pub pool: PoolStats,
    /// Link-fabric contention counters (ring-full stalls, mailbox drain
    /// batches) merged across workers at the last settle. All-zero on
    /// simnet and in threaded replay mode — only free-running workers
    /// drain whole mailboxes.
    pub fabric: simnet::FabricStats,
    /// Execution backend the run used.
    pub backend: ExecBackend,
}

impl RunReport {
    /// Total messages sent.
    pub fn messages(&self) -> u64 {
        self.network.total_messages()
    }

    /// Total application-data bytes sent.
    pub fn data_bytes(&self) -> u64 {
        self.network.total_data_bytes()
    }

    /// Total protocol control bytes sent.
    pub fn control_bytes(&self) -> u64 {
        self.network.total_control_bytes()
    }

    /// Control bytes per application operation.
    pub fn control_bytes_per_op(&self) -> f64 {
        if self.operations == 0 {
            0.0
        } else {
            self.control_bytes() as f64 / self.operations as f64
        }
    }

    /// Messages per application operation.
    pub fn messages_per_op(&self) -> f64 {
        if self.operations == 0 {
            0.0
        } else {
            self.messages() as f64 / self.operations as f64
        }
    }

    /// Transmissions dropped (and retransmitted) by the fault schedule.
    pub fn drops(&self) -> u64 {
        self.network.total_drops()
    }

    /// Duplicate copies delivered and discarded by link layers.
    pub fn duplicates(&self) -> u64 {
        self.network.total_duplicates()
    }

    /// Deliveries lost because their destination was crashed.
    pub fn crash_losses(&self) -> u64 {
        self.network.total_crash_losses()
    }
}

/// Execute a prepared workload script against a fresh runtime-selected
/// deployment. This is the single execution path every comparative driver
/// (benchmarks, examples, tests) goes through.
pub fn run_script(
    kind: ProtocolKind,
    dist: &Distribution,
    ops: &[WorkloadOp],
    config: SimConfig,
    record: bool,
) -> RunReport {
    run_script_faulted(kind, dist, ops, config, record, None)
}

/// [`run_script`] on an explicit execution backend. Scripted crashes are
/// simnet-only, so this path takes none; the threaded backend's one
/// remaining restriction (fault-free runs) is enforced at construction.
pub fn run_script_backend(
    kind: ProtocolKind,
    dist: &Distribution,
    ops: &[WorkloadOp],
    config: SimConfig,
    record: bool,
    backend: ExecBackend,
) -> RunReport {
    run_script_on(kind, dist, ops, config, record, None, backend)
}

/// [`run_script`] with a scripted crash: `crash.proc` goes down before
/// the op at `crash_before_op` (its own ops inside the window are skipped
/// — a down process executes nothing) and restarts — snapshot restore,
/// catch-up handshake, recovery settle — before the op at
/// `restart_before_op`. A process still down when the script ends is
/// restarted before the final settle, so every run ends fully recovered.
pub fn run_script_faulted(
    kind: ProtocolKind,
    dist: &Distribution,
    ops: &[WorkloadOp],
    config: SimConfig,
    record: bool,
    crash: Option<CrashSchedule>,
) -> RunReport {
    run_script_on(kind, dist, ops, config, record, crash, ExecBackend::Simnet)
}

/// The single construction-and-measurement site behind every `run_script*`
/// entry point: build the deployment on `backend`, drive the script, and
/// collect the unified report.
fn run_script_on(
    kind: ProtocolKind,
    dist: &Distribution,
    ops: &[WorkloadOp],
    config: SimConfig,
    record: bool,
    crash: Option<CrashSchedule>,
    backend: ExecBackend,
) -> RunReport {
    let mut dsm = DynDsm::with_backend(kind, dist.clone(), config, backend);
    if !record {
        dsm.disable_recording();
    }
    apply_script(&mut dsm, ops, crash);
    RunReport {
        protocol: kind,
        history: dsm.history(),
        network: dsm.network_stats().clone(),
        control: dsm.control_summary(),
        operations: dsm.operation_count(),
        virtual_time: dsm.now(),
        forwarded: dsm.forwarded_messages(),
        events: dsm.events_processed(),
        pool: dsm.pool_stats(),
        fabric: dsm.fabric_stats(),
        backend,
    }
}

/// Drive `ops` (plus an optional scripted crash) against an existing
/// deployment, ending with a final settle. This is the one crash-driver
/// loop — [`run_script_faulted`] and the differential fault tests both
/// go through it, so the crash semantics (where the window sits, which
/// ops a down process skips, the forced restart before the final
/// settle) can never drift between the engine and its oracle.
pub fn apply_script(dsm: &mut DynDsm, ops: &[WorkloadOp], crash: Option<CrashSchedule>) {
    for (i, op) in ops.iter().enumerate() {
        if let Some(c) = crash {
            if i == c.crash_before_op {
                dsm.crash(c.proc)
                    .expect("crash schedule targets a live process");
            }
            if i == c.restart_before_op {
                dsm.restart(c.proc).expect("restart follows the crash");
            }
        }
        match *op {
            WorkloadOp::Write { proc, var, value } => {
                if dsm.is_crashed(proc) {
                    continue;
                }
                dsm.write(proc, var, value)
                    .expect("workload respects the distribution");
            }
            WorkloadOp::Read { proc, var } => {
                if dsm.is_crashed(proc) {
                    continue;
                }
                let _ = dsm
                    .read(proc, var)
                    .expect("workload respects the distribution");
            }
            WorkloadOp::Settle => {
                dsm.settle();
            }
        }
    }
    if let Some(c) = crash {
        if dsm.is_crashed(c.proc) {
            dsm.restart(c.proc).expect("restart follows the crash");
        }
    }
    dsm.settle();
}

/// Run a scenario under one protocol.
pub fn run_scenario(kind: ProtocolKind, scenario: &Scenario) -> RunReport {
    let dist = scenario.build_distribution();
    let ops = scenario.generate_ops(&dist);
    let crash = scenario.faults.crash_schedule(&ops, scenario.processes);
    run_script_on(
        kind,
        &dist,
        &ops,
        scenario.sim_config(),
        scenario.record,
        crash,
        scenario.backend,
    )
}

/// Run a scenario under every protocol, in benchmark-table order.
pub fn run_all(scenario: &Scenario) -> Vec<RunReport> {
    let dist = scenario.build_distribution();
    let ops = scenario.generate_ops(&dist);
    let crash = scenario.faults.crash_schedule(&ops, scenario.processes);
    ProtocolKind::ALL
        .iter()
        .map(|&kind| {
            run_script_on(
                kind,
                &dist,
                &ops,
                scenario.sim_config(),
                scenario.record,
                crash,
                scenario.backend,
            )
        })
        .collect()
}

/// Map `f` over `items` on a small scoped-thread fan-out, preserving
/// order.
///
/// Sweep cells (`scenario_matrix` rows, `scenario_tour` scenarios) are
/// independent deterministic simulations, so they parallelize trivially:
/// the items are split into one contiguous chunk per worker (at most
/// [`std::thread::available_parallelism`], capped at 8; override with the
/// `SWEEP_WORKERS` environment variable, `SWEEP_WORKERS=1` forces the
/// sequential path) and the results are reassembled in input order — the
/// output is bit-identical to the sequential map. No thread pool, no
/// extra dependencies: the threads live only for the duration of the
/// call.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = effective_sweep_workers(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(workers);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_size));
        chunks.push(items);
        items = rest;
    }
    let f = &f;
    let mut results: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            results.push(handle.join().expect("sweep worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// The worker count [`parallel_map`] would use for `len` items: the
/// `SWEEP_WORKERS` environment variable if set (any positive value),
/// otherwise [`std::thread::available_parallelism`] capped at 8 — and
/// never more than one worker per item. Exposed so sweep drivers can
/// record the parallelism a sweep actually ran with alongside its rows.
pub fn effective_sweep_workers(len: usize) -> usize {
    std::env::var("SWEEP_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&w| w > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        })
        .min(len.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use histories::check;
    use simnet::SimDuration;

    fn families() -> Vec<WorkloadFamily> {
        vec![
            WorkloadFamily::Uniform { write_ratio: 0.5 },
            WorkloadFamily::Hotspot {
                write_ratio: 0.5,
                hot_bias: 0.7,
            },
            WorkloadFamily::ProducerConsumer,
            WorkloadFamily::PartitionLocal { write_ratio: 0.5 },
        ]
    }

    #[test]
    fn every_family_respects_the_distribution() {
        let dist = Distribution::random(5, 8, 2, 3);
        for family in families() {
            let ops = generate_family_ops(&dist, &family, 10, SettlePolicy::Every(4), 7);
            for op in &ops {
                if let WorkloadOp::Write { proc, var, .. } | WorkloadOp::Read { proc, var } = op {
                    assert!(dist.replicates(*proc, *var), "{}", family.label());
                }
            }
            assert!(ops.iter().any(|o| matches!(o, WorkloadOp::Settle)));
        }
    }

    #[test]
    fn producer_consumer_has_a_single_writer_per_variable() {
        let dist = Distribution::random(6, 9, 3, 5);
        let ops = generate_family_ops(
            &dist,
            &WorkloadFamily::ProducerConsumer,
            12,
            SettlePolicy::AtEnd,
            9,
        );
        for op in &ops {
            if let WorkloadOp::Write { proc, var, .. } = op {
                assert_eq!(
                    dist.replicas_of(*var).iter().next(),
                    Some(proc),
                    "only the owner writes {var}"
                );
            }
        }
        assert!(ops.iter().any(|o| matches!(o, WorkloadOp::Write { .. })));
    }

    #[test]
    fn hotspot_concentrates_accesses() {
        let dist = Distribution::full(4, 8);
        let hot = generate_family_ops(
            &dist,
            &WorkloadFamily::Hotspot {
                write_ratio: 0.5,
                hot_bias: 0.9,
            },
            40,
            SettlePolicy::AtEnd,
            1,
        );
        let hits = |ops: &[WorkloadOp]| {
            ops.iter()
                .filter(|op| {
                    matches!(op,
                        WorkloadOp::Write { var, .. } | WorkloadOp::Read { var, .. } if *var == VarId(0))
                })
                .count()
        };
        let uniform = generate_family_ops(
            &dist,
            &WorkloadFamily::Uniform { write_ratio: 0.5 },
            40,
            SettlePolicy::AtEnd,
            1,
        );
        assert!(
            hits(&hot) > 2 * hits(&uniform),
            "hotspot {} vs uniform {}",
            hits(&hot),
            hits(&uniform)
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let dist = Distribution::ring_overlap(5);
        let fam = WorkloadFamily::PartitionLocal { write_ratio: 0.4 };
        let a = generate_family_ops(&dist, &fam, 6, SettlePolicy::Every(3), 11);
        let b = generate_family_ops(&dist, &fam, 6, SettlePolicy::Every(3), 11);
        assert_eq!(a, b);
        let c = generate_family_ops(&dist, &fam, 6, SettlePolicy::Every(3), 12);
        assert_ne!(a, c);
    }

    #[test]
    fn every_protocol_meets_its_criterion_on_every_family() {
        for family in families() {
            let scenario = Scenario {
                processes: 4,
                variables: 6,
                workload: family,
                ops_per_process: 5,
                settle: SettlePolicy::Every(3),
                record: true,
                ..Scenario::default()
            };
            for report in run_all(&scenario) {
                assert!(
                    check(&report.history, report.protocol.guaranteed_criterion()).consistent,
                    "{} under {}:\n{}",
                    report.protocol,
                    family.label(),
                    report.history.pretty()
                );
            }
        }
    }

    #[test]
    fn jitter_and_distance_latencies_keep_histories_consistent() {
        let latencies = [
            LatencyModel::Uniform {
                min: SimDuration::from_micros(1),
                max: SimDuration::from_micros(200),
            },
            LatencyModel::Distance {
                base: SimDuration::from_micros(2),
                per_unit: SimDuration::from_micros(5),
            },
            LatencyModel::PerByte {
                base: SimDuration::from_micros(1),
                nanos_per_byte: 50,
            },
        ];
        for latency in latencies {
            let scenario = Scenario {
                processes: 4,
                variables: 5,
                latency: latency.clone(),
                ops_per_process: 5,
                record: true,
                ..Scenario::default()
            };
            for report in run_all(&scenario) {
                assert!(
                    check(&report.history, report.protocol.guaranteed_criterion()).consistent,
                    "{} under {}:\n{}",
                    report.protocol,
                    latency_label(&latency),
                    report.history.pretty()
                );
                assert!(report.virtual_time > SimTime::ZERO);
            }
        }
    }

    #[test]
    fn control_cost_ordering_matches_the_paper() {
        let scenario = Scenario {
            processes: 8,
            variables: 12,
            distribution: DistributionFamily::Random { replicas: 2 },
            ops_per_process: 10,
            settle: SettlePolicy::Every(4),
            seed: 5,
            ..Scenario::default()
        };
        let reports = run_all(&scenario);
        let by_kind = |k: ProtocolKind| reports.iter().find(|r| r.protocol == k).unwrap();
        let pram = by_kind(ProtocolKind::PramPartial);
        let cpart = by_kind(ProtocolKind::CausalPartial);
        let cfull = by_kind(ProtocolKind::CausalFull);
        assert!(pram.control_bytes() < cpart.control_bytes());
        assert!(pram.control_bytes() < cfull.control_bytes());
        assert!(pram.messages_per_op() <= cpart.messages_per_op());
        assert!(pram.control_bytes_per_op() < cfull.control_bytes_per_op());
    }

    #[test]
    fn ring_topology_scenario_runs_when_traffic_fits() {
        // Ring-overlap distribution + producer/consumer workload only ever
        // sends updates between ring neighbours, so a ring topology works
        // without any transit forwarding.
        let scenario = Scenario {
            distribution: DistributionFamily::RingOverlap,
            processes: 6,
            variables: 6,
            workload: WorkloadFamily::ProducerConsumer,
            topology: TopologyFamily::Ring,
            ops_per_process: 4,
            record: true,
            ..Scenario::default()
        };
        let report = run_scenario(ProtocolKind::PramPartial, &scenario);
        assert!(check(&report.history, histories::Criterion::Pram).consistent);
        assert!(report.messages() > 0);
    }

    #[test]
    fn every_protocol_meets_its_criterion_on_every_topology() {
        for topology in standard_topologies() {
            let scenario = Scenario {
                processes: 4,
                variables: 6,
                topology: topology.clone(),
                ops_per_process: 5,
                settle: SettlePolicy::Every(3),
                record: true,
                ..Scenario::default()
            };
            for report in run_all(&scenario) {
                assert!(
                    check(&report.history, report.protocol.guaranteed_criterion()).consistent,
                    "{} on {}:\n{}",
                    report.protocol,
                    topology.label(),
                    report.history.pretty()
                );
                // The polynomial spot-checker agrees on the protocol runs
                // (every recorded history is at least PRAM).
                assert_eq!(histories::pram_spot_check(&report.history), Ok(()));
            }
        }
    }

    #[test]
    fn sparse_topologies_relay_but_do_not_change_the_outcome() {
        // Single-writer-per-variable workload: replica contents at settle
        // points are each writer's FIFO prefix, independent of per-hop
        // timing, so the recorded history is topology-independent.
        let base = Scenario {
            processes: 6,
            variables: 8,
            workload: WorkloadFamily::ProducerConsumer,
            ops_per_process: 6,
            settle: SettlePolicy::Every(4),
            record: true,
            seed: 9,
            ..Scenario::default()
        };
        let mesh = run_scenario(ProtocolKind::CausalPartial, &base);
        for family in [TopologyFamily::Star, TopologyFamily::Line] {
            let sparse = Scenario {
                topology: family.clone(),
                ..base.clone()
            };
            let routed = run_scenario(ProtocolKind::CausalPartial, &sparse);
            // The history and control accounting are topology-independent…
            assert_eq!(mesh.history, routed.history, "{}", family.label());
            assert_eq!(mesh.control, routed.control);
            // …while the wire pays for relaying: strictly more messages on
            // these hub/path topologies.
            assert!(routed.messages() > mesh.messages(), "{}", family.label());
        }
    }

    #[test]
    fn custom_topology_family_is_honoured() {
        let scenario = Scenario {
            processes: 4,
            topology: TopologyFamily::Custom(Topology::ring(4)),
            ops_per_process: 2,
            record: true,
            ..Scenario::default()
        };
        assert_eq!(
            scenario.label(),
            "random-2/uniform/constant/custom/unicast/simnet/none"
        );
        let report = run_scenario(ProtocolKind::PramPartial, &scenario);
        assert!(report.operations > 0);
    }

    #[test]
    fn empty_scenario_statistics() {
        let scenario = Scenario {
            ops_per_process: 0,
            ..Scenario::default()
        };
        let report = run_scenario(ProtocolKind::PramPartial, &scenario);
        assert_eq!(report.operations, 0);
        assert_eq!(report.control_bytes_per_op(), 0.0);
        assert_eq!(report.messages_per_op(), 0.0);
    }

    #[test]
    fn every_protocol_meets_its_criterion_under_every_fault_family() {
        for faults in standard_faults() {
            let scenario = Scenario {
                processes: 4,
                variables: 6,
                workload: WorkloadFamily::ProducerConsumer,
                ops_per_process: 5,
                settle: SettlePolicy::Every(3),
                faults,
                record: true,
                ..Scenario::default()
            };
            for report in run_all(&scenario) {
                assert!(
                    check(&report.history, report.protocol.guaranteed_criterion()).consistent,
                    "{} under {}:\n{}",
                    report.protocol,
                    faults.label(),
                    report.history.pretty()
                );
            }
        }
    }

    #[test]
    fn link_fault_families_leave_race_free_runs_equivalent() {
        // Single writer per variable + settle-synchronized reads: the
        // observable behaviour is pinned to the fault-free run, while the
        // wire pays measurable retransmissions / duplicates.
        let base = Scenario {
            processes: 5,
            variables: 7,
            workload: WorkloadFamily::ProducerConsumer,
            ops_per_process: 6,
            settle: SettlePolicy::Every(4),
            record: true,
            seed: 13,
            ..Scenario::default()
        };
        let clean = run_scenario(ProtocolKind::CausalPartial, &base);
        assert_eq!(clean.drops(), 0);
        assert_eq!(clean.duplicates(), 0);
        let lossy = run_scenario(
            ProtocolKind::CausalPartial,
            &Scenario {
                faults: FaultFamily::Lossy,
                ..base.clone()
            },
        );
        assert_eq!(clean.history, lossy.history);
        assert_eq!(clean.control, lossy.control);
        assert!(lossy.drops() > 0);
        assert!(lossy.control_bytes() > clean.control_bytes());
        assert!(lossy.virtual_time > clean.virtual_time);
        let dup = run_scenario(
            ProtocolKind::CausalPartial,
            &Scenario {
                faults: FaultFamily::Duplicating,
                ..base
            },
        );
        assert_eq!(clean.history, dup.history);
        assert_eq!(clean.control, dup.control);
        assert!(dup.duplicates() > 0);
    }

    #[test]
    fn crash_restart_scenarios_recover_and_count_losses() {
        let scenario = Scenario {
            processes: 5,
            variables: 7,
            workload: WorkloadFamily::ProducerConsumer,
            ops_per_process: 6,
            settle: SettlePolicy::Every(4),
            faults: FaultFamily::CrashRestart,
            record: true,
            seed: 13,
            ..Scenario::default()
        };
        for report in run_all(&scenario) {
            // The crashed process missed deliveries…
            assert!(
                report.crash_losses() > 0,
                "{}: a crash window must lose deliveries",
                report.protocol
            );
            // …and the recorded history still meets the criterion.
            assert!(
                check(&report.history, report.protocol.guaranteed_criterion()).consistent,
                "{}:\n{}",
                report.protocol,
                report.history.pretty()
            );
        }
    }

    #[test]
    fn crash_schedules_skip_short_scripts_and_tiny_systems() {
        let ops = vec![WorkloadOp::Settle];
        assert_eq!(FaultFamily::CrashRestart.crash_schedule(&ops, 8), None);
        let ops: Vec<WorkloadOp> = (0..9).map(|_| WorkloadOp::Settle).collect();
        assert_eq!(FaultFamily::CrashRestart.crash_schedule(&ops, 1), None);
        assert_eq!(FaultFamily::Lossy.crash_schedule(&ops, 8), None);
        let schedule = FaultFamily::CrashRestart.crash_schedule(&ops, 8).unwrap();
        assert_eq!(schedule.proc, ProcId(7));
        assert!(schedule.crash_before_op < schedule.restart_before_op);
    }
}
