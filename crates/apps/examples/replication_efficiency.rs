//! Replication efficiency: measure the control-information cost of the four
//! MCS protocols on the same synthetic workload, for growing system sizes.
//!
//! Run with:
//! ```text
//! cargo run --release --example replication_efficiency
//! cargo run --release --example replication_efficiency -- 24   # up to 24 processes
//! ```
//!
//! This is a compact, human-readable version of the E1/E3 experiments in
//! `EXPERIMENTS.md`: control bytes per operation and the number of
//! processes that end up handling metadata about a given variable, per
//! protocol.

use apps::workload::{execute, generate, WorkloadSpec};
use dsm::{CausalFull, CausalPartial, PramPartial, Sequential};
use histories::{Distribution, VarId};
use simnet::SimConfig;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);

    println!("workload: 12 ops/process, 50% writes, replication factor 2\n");
    println!(
        "{:<6} {:<16} {:>12} {:>16} {:>14} {:>22}",
        "procs", "protocol", "messages", "control bytes", "ctl bytes/op", "nodes handling x0 meta"
    );

    let mut n = 4;
    while n <= max_n {
        let dist = Distribution::random(n, 2 * n, 2, 7);
        let spec = WorkloadSpec {
            ops_per_process: 12,
            write_ratio: 0.5,
            settle_every: 6,
            seed: 11,
        };
        let ops = generate(&dist, &spec);

        macro_rules! row {
            ($name:expr, $proto:ty) => {{
                let out = execute::<$proto>(&dist, &ops, SimConfig::default(), false);
                println!(
                    "{:<6} {:<16} {:>12} {:>16} {:>14.1} {:>22}",
                    n,
                    $name,
                    out.messages,
                    out.control_bytes,
                    out.control_bytes_per_op(),
                    out.control.relevant_nodes(VarId(0)).len()
                );
            }};
        }
        row!("pram-partial", PramPartial);
        row!("causal-partial", CausalPartial);
        row!("causal-full", CausalFull);
        row!("sequential", Sequential);
        println!();
        n *= 2;
    }

    println!(
        "PRAM partial replication keeps both the per-operation control bytes and the\n\
         set of metadata-handling processes bounded by the replica set, while the\n\
         causal protocols pay O(n) vector clocks — and causal-partial additionally\n\
         touches every node with control-only records (Theorem 1)."
    );
}
