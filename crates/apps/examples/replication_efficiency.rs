//! Replication efficiency: measure the control-information cost of the four
//! MCS protocols on the same synthetic workload, for growing system sizes.
//!
//! Run with:
//! ```text
//! cargo run --release --example replication_efficiency
//! cargo run --release --example replication_efficiency -- 24   # up to 24 processes
//! ```
//!
//! This is a compact, human-readable version of the E1/E3 experiments in
//! `EXPERIMENTS.md`: control bytes per operation and the number of
//! processes that end up handling metadata about a given variable, per
//! protocol. All four protocols run through the one scenario engine; no
//! per-protocol code path exists.

use apps::scenario::{run_all, DistributionFamily, Scenario, SettlePolicy, WorkloadFamily};
use histories::VarId;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);

    println!("workload: 12 ops/process, 50% writes, replication factor 2\n");
    println!(
        "{:<6} {:<16} {:>12} {:>16} {:>14} {:>22}",
        "procs", "protocol", "messages", "control bytes", "ctl bytes/op", "nodes handling x0 meta"
    );

    let mut n = 4;
    while n <= max_n {
        let scenario = Scenario {
            name: format!("efficiency-{n}"),
            distribution: DistributionFamily::Random { replicas: 2 },
            processes: n,
            variables: 2 * n,
            workload: WorkloadFamily::Uniform { write_ratio: 0.5 },
            ops_per_process: 12,
            settle: SettlePolicy::Every(6),
            seed: 11,
            record: false,
            ..Scenario::default()
        };
        for report in run_all(&scenario) {
            println!(
                "{:<6} {:<16} {:>12} {:>16} {:>14.1} {:>22}",
                n,
                report.protocol.name(),
                report.messages(),
                report.control_bytes(),
                report.control_bytes_per_op(),
                report.control.relevant_nodes(VarId(0)).len()
            );
        }
        println!();
        n *= 2;
    }

    println!(
        "PRAM partial replication keeps both the per-operation control bytes and the\n\
         set of metadata-handling processes bounded by the replica set, while the\n\
         causal protocols pay O(n) vector clocks — and causal-partial additionally\n\
         touches every node with control-only records (Theorem 1)."
    );
}
