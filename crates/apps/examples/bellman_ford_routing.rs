//! The paper's case study (§6): distributed Bellman-Ford routing over a
//! PRAM-consistent, partially replicated shared memory.
//!
//! Run with:
//! ```text
//! cargo run --example bellman_ford_routing            # the Figure 8 network
//! cargo run --example bellman_ford_routing -- 40 3    # 40 nodes, seed 3
//! ```
//!
//! The example runs the Figure 7 algorithm on the Figure 8 network (or a
//! random network), verifies the distances against a sequential
//! Bellman-Ford, and compares the message/control cost of deploying the
//! same computation over the four MCS protocols — all selected at runtime
//! from their [`dsm::ProtocolKind`] values.

use apps::{bellman_ford_distribution, run_bellman_ford, shortest_paths_reference, Network};
use dsm::ProtocolKind;
use histories::ProcId;
use simnet::SimConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let net = if args.len() >= 2 {
        let n: usize = args[1].parse().expect("node count");
        let seed: u64 = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(1);
        println!("random network: {n} nodes, seed {seed}");
        Network::random_reachable(n, 2 * n, 9, seed)
    } else {
        println!("network: Figure 8 (5 nodes, 8 links)");
        Network::fig8()
    };

    let dist = bellman_ford_distribution(&net);
    println!(
        "variable distribution: {} processes, {} variables, mean replication factor {:.2}",
        dist.process_count(),
        dist.var_count(),
        dist.mean_replication_factor()
    );
    for p in 0..dist.process_count().min(5) {
        println!("  X_{} = {:?}", p + 1, dist.vars_of(ProcId(p)));
    }

    let reference = shortest_paths_reference(&net, 0);

    println!(
        "\n{:<16} {:>10} {:>12} {:>14} {:>8} {:>6}",
        "protocol", "messages", "data bytes", "control bytes", "rounds", "ok"
    );
    let runs: Vec<_> = ProtocolKind::ALL
        .iter()
        .map(|&kind| (kind, run_bellman_ford(kind, &net, 0, SimConfig::default())))
        .collect();
    for (kind, run) in &runs {
        let ok = run.converged && run.distances == reference;
        println!(
            "{:<16} {:>10} {:>12} {:>14} {:>8} {:>6}",
            kind.name(),
            run.messages,
            run.data_bytes,
            run.control_bytes,
            run.rounds,
            ok
        );
    }

    let by_kind = |k: ProtocolKind| &runs.iter().find(|(kind, _)| *kind == k).unwrap().1;
    let pram = by_kind(ProtocolKind::PramPartial);
    println!("\nshortest distances from node 1: {:?}", pram.distances);
    println!("sequential reference:            {reference:?}");
    let cfull = by_kind(ProtocolKind::CausalFull);
    if pram.control_bytes > 0 {
        println!(
            "\ncontrol-byte ratio causal-full / pram-partial: {:.2}x",
            cfull.control_bytes as f64 / pram.control_bytes as f64
        );
    }
}
