//! A tour of the scenario engine: one driver loop sweeping protocols ×
//! distribution families × workload families × latency models × network
//! topologies × delivery modes.
//!
//! Run with:
//! ```text
//! cargo run --release --example scenario_tour
//! cargo run --release --example scenario_tour -- 12   # 12 processes
//! ```
//!
//! Every cell of the sweep goes through the same runtime-dispatched
//! execution path ([`apps::scenario::run_scenario`]); there is no
//! per-protocol code anywhere in this file. Sparse topologies (ring, grid,
//! star) run over the overlay routing layer — every logical send is
//! relayed along BFS shortest paths — so all four protocols complete on
//! all of them; the delivery-mode axis additionally runs each topology
//! with tree multicast and control-record batching enabled. Cells are
//! independent deterministic simulations, so they execute on a scoped
//! thread fan-out ([`apps::scenario::parallel_map`]) and print in sweep
//! order.
//!
//! Histories are recorded and checked against each protocol's advertised
//! criterion: the complete (worst-case exponential) checker verifies
//! histories up to 24 operations; larger causal cells go through the
//! polynomial causal spot-checker (writes-into ∪ program-order cycle and
//! overwritten-read detection) and larger PRAM cells through the PRAM
//! spot-checker, so the tour is an end-to-end correctness sweep at every
//! size.

use apps::scenario::{
    parallel_map, run_all, standard_deliveries, standard_distributions, standard_latencies,
    standard_topologies, standard_workloads, RunReport, Scenario, SettlePolicy, TopologyFamily,
};
use histories::{causal_spot_check, check, pram_spot_check, Criterion};
use simnet::{DeliveryMode, LatencyModel};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let mut scenarios = Vec::new();
    for topology in standard_topologies() {
        for dist_family in standard_distributions() {
            for workload in standard_workloads() {
                for latency in standard_latencies() {
                    // Latency models are swept on the mesh; sparse
                    // topologies (whose per-hop behaviour is the point)
                    // run under the default model to keep the tour fast.
                    if topology != TopologyFamily::FullMesh && latency != LatencyModel::default() {
                        continue;
                    }
                    for delivery in standard_deliveries() {
                        // Delivery modes are swept on every topology under
                        // the default latency; non-default latencies keep
                        // the baseline wire format.
                        if delivery != DeliveryMode::default() && latency != LatencyModel::default()
                        {
                            continue;
                        }
                        scenarios.push(Scenario {
                            name: "tour".into(),
                            distribution: dist_family.clone(),
                            processes: n,
                            variables: n,
                            workload,
                            ops_per_process: 4,
                            settle: SettlePolicy::Every(4),
                            latency: latency.clone(),
                            topology: topology.clone(),
                            delivery,
                            seed: 7,
                            record: true,
                        });
                    }
                }
            }
        }
    }

    // Independent cells → scoped-thread fan-out; results come back in
    // sweep order, so the printed table is identical to a sequential run.
    let results: Vec<(String, Vec<RunReport>)> =
        parallel_map(scenarios, |scenario| (scenario.label(), run_all(&scenario)));

    println!(
        "{:<58} {:<16} {:>9} {:>7} {:>13} {:>12} {:>12} {:>6}",
        "scenario", "protocol", "messages", "relayed", "ctl bytes", "ctl/op", "virt time", "ok"
    );

    let mut cells = 0usize;
    let mut full_checks = 0usize;
    let mut causal_spots = 0usize;
    let mut pram_spots = 0usize;
    for (label, reports) in results {
        for report in reports {
            // The formal checkers run a serialization search that is
            // worst-case exponential; verify small histories completely
            // and spot-check the rest in polynomial time, with the
            // sharper causal scan wherever the protocol advertises
            // causal consistency.
            let ok = if report.history.len() <= 24 {
                full_checks += 1;
                check(&report.history, report.protocol.criterion()).consistent
            } else if report.protocol.criterion() == Criterion::Causal {
                causal_spots += 1;
                causal_spot_check(&report.history).is_ok()
            } else {
                pram_spots += 1;
                pram_spot_check(&report.history).is_ok()
            };
            assert!(ok, "{label}: {} violated its criterion", report.protocol);
            println!(
                "{:<58} {:<16} {:>9} {:>7} {:>13} {:>12.1} {:>12?} {:>6}",
                label,
                report.protocol.name(),
                report.messages(),
                report.forwarded,
                report.control_bytes(),
                report.control_bytes_per_op(),
                report.virtual_time,
                ok
            );
            cells += 1;
        }
    }
    println!(
        "\n{cells} scenario cells executed and checked through one runtime-dispatched engine \
         ({full_checks} complete checks, {causal_spots} causal spot-checks, {pram_spots} PRAM \
         spot-checks)."
    );
}
