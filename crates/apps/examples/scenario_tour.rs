//! A tour of the scenario engine: one driver loop sweeping protocols ×
//! distribution families × workload families × latency models.
//!
//! Run with:
//! ```text
//! cargo run --release --example scenario_tour
//! cargo run --release --example scenario_tour -- 12   # 12 processes
//! ```
//!
//! Every cell of the sweep goes through the same runtime-dispatched
//! execution path ([`apps::scenario::run_scenario`]); there is no
//! per-protocol code anywhere in this file. Histories are recorded and
//! checked against each protocol's advertised criterion, so the tour is
//! also an end-to-end correctness sweep.

use apps::scenario::{
    run_all, standard_distributions, standard_latencies, standard_workloads, Scenario, SettlePolicy,
};
use histories::check;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let distributions = standard_distributions();
    let workloads = standard_workloads();
    let latencies = standard_latencies();

    println!(
        "{:<42} {:<16} {:>9} {:>13} {:>12} {:>12} {:>6}",
        "scenario", "protocol", "messages", "ctl bytes", "ctl/op", "virt time", "ok"
    );

    let mut cells = 0usize;
    for dist_family in &distributions {
        for workload in &workloads {
            for latency in &latencies {
                let scenario = Scenario {
                    name: "tour".into(),
                    distribution: dist_family.clone(),
                    processes: n,
                    variables: n,
                    workload: *workload,
                    ops_per_process: 4,
                    settle: SettlePolicy::Every(4),
                    latency: latency.clone(),
                    seed: 7,
                    record: true,
                    ..Scenario::default()
                };
                let label = scenario.label();
                for report in run_all(&scenario) {
                    // The formal checkers run a serialization search that
                    // is worst-case exponential; only verify histories of a
                    // size they handle instantly.
                    let ok = if report.history.len() <= 24 {
                        check(&report.history, report.protocol.criterion()).consistent
                    } else {
                        true
                    };
                    assert!(ok, "{label}: {} violated its criterion", report.protocol);
                    println!(
                        "{:<42} {:<16} {:>9} {:>13} {:>12.1} {:>12?} {:>6}",
                        label,
                        report.protocol.name(),
                        report.messages(),
                        report.control_bytes(),
                        report.control_bytes_per_op(),
                        report.virtual_time,
                        ok
                    );
                    cells += 1;
                }
            }
        }
    }
    println!(
        "\n{cells} scenario cells executed and checked through one runtime-dispatched engine."
    );
}
