//! A tour of the scenario engine: one driver loop sweeping protocols ×
//! distribution families × workload families × latency models × network
//! topologies.
//!
//! Run with:
//! ```text
//! cargo run --release --example scenario_tour
//! cargo run --release --example scenario_tour -- 12   # 12 processes
//! ```
//!
//! Every cell of the sweep goes through the same runtime-dispatched
//! execution path ([`apps::scenario::run_scenario`]); there is no
//! per-protocol code anywhere in this file. Sparse topologies (ring, grid,
//! star) run over the overlay routing layer — every logical send is
//! relayed along BFS shortest paths — so all four protocols complete on
//! all of them. Histories are recorded and checked against each
//! protocol's advertised criterion: the complete (worst-case exponential)
//! checker verifies histories up to 24 operations, and the polynomial
//! PRAM spot-checker covers every larger cell, so the tour is an
//! end-to-end correctness sweep at every size.

use apps::scenario::{
    run_all, standard_distributions, standard_latencies, standard_topologies, standard_workloads,
    Scenario, SettlePolicy, TopologyFamily,
};
use histories::{check, pram_spot_check};
use simnet::LatencyModel;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let distributions = standard_distributions();
    let workloads = standard_workloads();
    let latencies = standard_latencies();
    let topologies = standard_topologies();

    println!(
        "{:<48} {:<16} {:>9} {:>7} {:>13} {:>12} {:>12} {:>6}",
        "scenario", "protocol", "messages", "relayed", "ctl bytes", "ctl/op", "virt time", "ok"
    );

    let mut cells = 0usize;
    let mut full_checks = 0usize;
    let mut spot_checks = 0usize;
    for topology in &topologies {
        for dist_family in &distributions {
            for workload in &workloads {
                for latency in &latencies {
                    // Latency models are swept on the mesh; sparse
                    // topologies (whose per-hop behaviour is the point)
                    // run under the default model to keep the tour fast.
                    if *topology != TopologyFamily::FullMesh && *latency != LatencyModel::default()
                    {
                        continue;
                    }
                    let scenario = Scenario {
                        name: "tour".into(),
                        distribution: dist_family.clone(),
                        processes: n,
                        variables: n,
                        workload: *workload,
                        ops_per_process: 4,
                        settle: SettlePolicy::Every(4),
                        latency: latency.clone(),
                        topology: topology.clone(),
                        seed: 7,
                        record: true,
                    };
                    let label = scenario.label();
                    for report in run_all(&scenario) {
                        // The formal checkers run a serialization search
                        // that is worst-case exponential; verify small
                        // histories completely and spot-check the rest in
                        // polynomial time.
                        let ok = if report.history.len() <= 24 {
                            full_checks += 1;
                            check(&report.history, report.protocol.criterion()).consistent
                        } else {
                            spot_checks += 1;
                            pram_spot_check(&report.history).is_ok()
                        };
                        assert!(ok, "{label}: {} violated its criterion", report.protocol);
                        println!(
                            "{:<48} {:<16} {:>9} {:>7} {:>13} {:>12.1} {:>12?} {:>6}",
                            label,
                            report.protocol.name(),
                            report.messages(),
                            report.forwarded,
                            report.control_bytes(),
                            report.control_bytes_per_op(),
                            report.virtual_time,
                            ok
                        );
                        cells += 1;
                    }
                }
            }
        }
    }
    println!(
        "\n{cells} scenario cells executed and checked through one runtime-dispatched engine \
         ({full_checks} complete checks, {spot_checks} polynomial spot-checks)."
    );
}
