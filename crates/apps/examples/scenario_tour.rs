//! A tour of the scenario engine: one driver loop sweeping protocols ×
//! distribution families × workload families × latency models × network
//! topologies × delivery modes × fault families.
//!
//! Run with:
//! ```text
//! cargo run --release --example scenario_tour
//! cargo run --release --example scenario_tour -- 12   # 12 processes
//! ```
//!
//! Every cell of the sweep goes through the same runtime-dispatched
//! execution path ([`apps::scenario::run_scenario`]); there is no
//! per-protocol code anywhere in this file. Sparse topologies (ring, grid,
//! star) run over the overlay routing layer — every logical send is
//! relayed along BFS shortest paths — so all four protocols complete on
//! all of them; the delivery-mode axis additionally runs each topology
//! with tree multicast and control-record batching enabled, and the fault
//! axis re-runs each topology under seeded message drops (with
//! retransmission), duplication (discarded by the link layer), and a
//! scripted crash-restart with snapshot recovery. Cells are independent
//! deterministic simulations, so they execute on a scoped thread fan-out
//! ([`apps::scenario::parallel_map`]) and print in sweep order.
//!
//! Histories are recorded and checked against each protocol's *settled*
//! criterion ([`dsm::ProtocolKind::settled_criterion`]): the tour settles
//! after every operation, so no read races an in-flight write and the
//! write-ordering protocols (sequencer, op-log) are held to full
//! sequential consistency, not just their always-guaranteed PRAM. The
//! complete (worst-case exponential) checker verifies
//! histories up to 24 operations; larger causal cells go through the
//! polynomial causal spot-checker (writes-into ∪ program-order cycle and
//! overwritten-read detection) and larger PRAM cells through the PRAM
//! spot-checker, so the tour is an end-to-end correctness sweep at every
//! size. On top of the per-cell checks, lossy and duplicating cells of
//! race-free (producer/consumer) workloads are pinned **equal** to their
//! fault-free sibling cell: link faults may change what the wire pays,
//! never what the protocols deliver.

use apps::scenario::{
    parallel_map, run_all, standard_deliveries, standard_distributions, standard_faults,
    standard_latencies, standard_topologies, standard_workloads, FaultFamily, RunReport, Scenario,
    SettlePolicy, TopologyFamily, WorkloadFamily,
};
use histories::{causal_spot_check, check, pram_spot_check, Criterion};
use simnet::{DeliveryMode, ExecBackend, LatencyModel, ThreadedMode};
use std::collections::BTreeMap;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let mut scenarios = Vec::new();
    for topology in standard_topologies() {
        for dist_family in standard_distributions() {
            for workload in standard_workloads() {
                for latency in standard_latencies() {
                    // Latency models are swept on the mesh; sparse
                    // topologies (whose per-hop behaviour is the point)
                    // run under the default model to keep the tour fast.
                    if topology != TopologyFamily::FullMesh && latency != LatencyModel::default() {
                        continue;
                    }
                    for delivery in standard_deliveries() {
                        // Delivery modes are swept on every topology under
                        // the default latency; non-default latencies keep
                        // the baseline wire format.
                        if delivery != DeliveryMode::default() && latency != LatencyModel::default()
                        {
                            continue;
                        }
                        for backend in ExecBackend::ALL {
                            // The threaded backend sweeps every delivery
                            // mode on the mesh and every sparse topology
                            // under the baseline wire format (all under
                            // the default latency — worker threads have
                            // no virtual clock to model latency with);
                            // the simnet sibling cell is its oracle.
                            if backend != ExecBackend::Simnet
                                && (latency != LatencyModel::default()
                                    || (topology != TopologyFamily::FullMesh
                                        && delivery != DeliveryMode::default()))
                            {
                                continue;
                            }
                            for faults in standard_faults() {
                                // Fault families are swept on every
                                // topology under the default latency and
                                // wire format: the fault layer lives
                                // beneath both, so one axis at a time
                                // keeps the tour interpretable. Faults
                                // are simnet-only.
                                if faults != FaultFamily::None
                                    && (latency != LatencyModel::default()
                                        || delivery != DeliveryMode::default()
                                        || backend != ExecBackend::Simnet)
                                {
                                    continue;
                                }
                                scenarios.push(Scenario {
                                    name: "tour".into(),
                                    distribution: dist_family.clone(),
                                    processes: n,
                                    variables: n,
                                    workload,
                                    ops_per_process: 4,
                                    // Settle-synchronize every cell: this
                                    // is what licenses checking the
                                    // *settled* criterion below.
                                    settle: SettlePolicy::Every(1),
                                    latency: latency.clone(),
                                    topology: topology.clone(),
                                    delivery,
                                    faults,
                                    backend,
                                    seed: 7,
                                    record: true,
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    // Independent cells → scoped-thread fan-out; results come back in
    // sweep order, so the printed table is identical to a sequential run.
    let results: Vec<(
        String,
        FaultFamily,
        WorkloadFamily,
        ExecBackend,
        Vec<RunReport>,
    )> = parallel_map(scenarios, |scenario| {
        (
            scenario.label(),
            scenario.faults,
            scenario.workload,
            scenario.backend,
            run_all(&scenario),
        )
    });

    println!(
        "{:<66} {:<16} {:>9} {:>7} {:>6} {:>5} {:>13} {:>12} {:>6}",
        "scenario",
        "protocol",
        "messages",
        "relayed",
        "drops",
        "dups",
        "ctl bytes",
        "virt time",
        "ok"
    );

    // Fault-free sibling histories, keyed by the label minus its fault
    // segment, used to pin lossy/duplicating equivalence below. The
    // backend-free key (label minus backend *and* fault segments)
    // additionally pins threaded-replay cells to their simnet sibling.
    let mut baselines: BTreeMap<String, Vec<histories::History>> = BTreeMap::new();
    let mut simnet_baselines: BTreeMap<String, Vec<histories::History>> = BTreeMap::new();
    let mut cells = 0usize;
    let mut full_checks = 0usize;
    let mut causal_spots = 0usize;
    let mut pram_spots = 0usize;
    let mut pinned_equal = 0usize;
    let mut replay_pinned = 0usize;
    for (label, faults, workload, backend, reports) in results {
        let coordinate = label
            .rsplit_once('/')
            .map(|(head, _)| head.to_string())
            .unwrap_or_else(|| label.clone());
        // Strip the backend segment too (it sits just before faults).
        let backend_free = coordinate
            .rsplit_once('/')
            .map(|(head, _)| head.to_string())
            .unwrap_or_else(|| coordinate.clone());
        if faults == FaultFamily::None {
            let histories: Vec<histories::History> =
                reports.iter().map(|r| r.history.clone()).collect();
            if backend == ExecBackend::Simnet {
                simnet_baselines.insert(backend_free.clone(), histories.clone());
            }
            baselines.insert(coordinate.clone(), histories);
        }
        for (i, report) in reports.iter().enumerate() {
            // The formal checkers run a serialization search that is
            // worst-case exponential; verify small histories completely
            // and spot-check the rest in polynomial time, with the
            // sharper causal scan wherever the protocol advertises
            // causal consistency.
            let ok = if report.history.len() <= 24 {
                full_checks += 1;
                check(&report.history, report.protocol.settled_criterion()).consistent
            } else if report.protocol.settled_criterion() == Criterion::Causal {
                causal_spots += 1;
                causal_spot_check(&report.history).is_ok()
            } else {
                pram_spots += 1;
                pram_spot_check(&report.history).is_ok()
            };
            assert!(ok, "{label}: {} violated its criterion", report.protocol);
            // Link faults must not change what race-free runs deliver:
            // lossy/duplicating producer-consumer cells are bit-identical
            // to their fault-free sibling.
            if matches!(faults, FaultFamily::Lossy | FaultFamily::Duplicating)
                && workload == WorkloadFamily::ProducerConsumer
            {
                let clean = &baselines[&coordinate][i];
                assert_eq!(
                    clean, &report.history,
                    "{label}: {} history diverged from the fault-free run",
                    report.protocol
                );
                pinned_equal += 1;
            }
            // The threaded replay backend re-executes the simnet delivery
            // schedule on real threads: its history must be bit-identical
            // to the simnet sibling cell, every protocol, every workload.
            if backend == ExecBackend::Threaded(ThreadedMode::Replay) {
                let oracle = &simnet_baselines[&backend_free][i];
                assert_eq!(
                    oracle, &report.history,
                    "{label}: {} replay history diverged from simnet",
                    report.protocol
                );
                replay_pinned += 1;
            }
            println!(
                "{:<66} {:<16} {:>9} {:>7} {:>6} {:>5} {:>13} {:>12?} {:>6}",
                label,
                report.protocol.name(),
                report.messages(),
                report.forwarded,
                report.drops(),
                report.duplicates(),
                report.control_bytes(),
                report.virtual_time,
                ok
            );
            cells += 1;
        }
    }
    println!(
        "\n{cells} scenario cells executed and checked through one runtime-dispatched engine \
         ({full_checks} complete checks, {causal_spots} causal spot-checks, {pram_spots} PRAM \
         spot-checks, {pinned_equal} fault cells pinned equal to their fault-free sibling, \
         {replay_pinned} threaded-replay cells pinned bit-identical to their simnet sibling)."
    );
}
