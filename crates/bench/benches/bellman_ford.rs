//! E4 / Figures 7–9: the distributed Bellman-Ford case study, on the exact
//! Figure 8 network and on growing random networks, per protocol — each
//! protocol selected at runtime from its `ProtocolKind` value.

use apps::{run_bellman_ford, Network};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsm::ProtocolKind;
use simnet::SimConfig;

fn bench_fig8(c: &mut Criterion) {
    let net = Network::fig8();
    let mut group = c.benchmark_group("bellman_ford_fig8");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for kind in ProtocolKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter(|| run_bellman_ford(kind, &net, 0, SimConfig::default()))
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("bellman_ford_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for n in [8usize, 16, 32] {
        let net = Network::random_reachable(n, 2 * n, 9, 9);
        for kind in [ProtocolKind::PramPartial, ProtocolKind::CausalFull] {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, _| {
                b.iter(|| run_bellman_ford(kind, &net, 0, SimConfig::default()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig8, bench_scaling);
criterion_main!(benches);
