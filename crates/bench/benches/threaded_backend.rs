//! The threaded execution backend against the simnet oracle: the same
//! bulk-phase producer/consumer script timed on the event-driven
//! simulator, on threaded replay (simnet schedule re-executed on real
//! threads), and on threaded free-running (real concurrent delivery with
//! a quiescence barrier at the settle). One Criterion group per system
//! size, so the crossover where real cores start paying for their channel
//! and wake-up overhead is visible directly.

use apps::scenario::{generate_family_ops, run_script_backend, SettlePolicy, WorkloadFamily};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsm::ProtocolKind;
use histories::Distribution;
use simnet::{ExecBackend, SimConfig, ThreadedMode};

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded_backend");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    for n in [4usize, 8] {
        let dist = Distribution::random(n, 2 * n, 2, 7);
        let ops = generate_family_ops(
            &dist,
            &WorkloadFamily::ProducerConsumer,
            16,
            SettlePolicy::AtEnd,
            7,
        );
        for (label, backend) in [
            ("simnet", ExecBackend::Simnet),
            (
                "threaded-replay",
                ExecBackend::Threaded(ThreadedMode::Replay),
            ),
            (
                "threaded-free",
                ExecBackend::Threaded(ThreadedMode::FreeRunning),
            ),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    run_script_backend(
                        ProtocolKind::PramPartial,
                        &dist,
                        &ops,
                        SimConfig::default(),
                        false,
                        backend,
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
