//! The scenario matrix: protocol × distribution family × workload family ×
//! latency model × topology family, every cell produced by one call into
//! the scenario engine. Criterion times representative cells (including a
//! routed sparse-topology cell, so the relay hot path is covered);
//! running the bench also prints every row as a JSON object line (the
//! same encoding `BENCH_baseline.json` stores).

use apps::scenario::{
    generate_family_ops, latency_label, run_script, standard_latencies, standard_topologies,
    SettlePolicy, TopologyFamily, WorkloadFamily,
};
use bench::{scenario_matrix, ScenarioMatrixRow};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsm::ProtocolKind;
use histories::Distribution;
use simnet::SimConfig;

fn bench_matrix_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_matrix");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    // Time one representative cell per latency model so regressions in the
    // delivery-scheduling hot path (channel lookup, latency sampling,
    // stats recording) show up directly.
    let dist = Distribution::random(8, 16, 2, 3);
    let ops = generate_family_ops(
        &dist,
        &WorkloadFamily::Uniform { write_ratio: 0.5 },
        8,
        SettlePolicy::Every(6),
        7,
    );
    let latencies = standard_latencies();
    for latency in &latencies {
        let label = latency_label(latency);
        let config = SimConfig {
            latency: latency.clone(),
            ..SimConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("pram-partial", label), label, |b, _| {
            b.iter(|| {
                run_script(
                    ProtocolKind::PramPartial,
                    &dist,
                    &ops,
                    config.clone(),
                    false,
                )
            })
        });
    }

    // One routed cell per sparse topology family: times the overlay's
    // relay hot path (envelope wrapping, next-hop lookup, transit
    // forwarding) against the direct-send mesh cell above.
    for family in standard_topologies() {
        if family == TopologyFamily::FullMesh {
            continue;
        }
        let config = SimConfig {
            topology: Some(family.build(8)),
            ..SimConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("pram-partial-routed", family.label()),
            family.label(),
            |b, _| {
                b.iter(|| {
                    run_script(
                        ProtocolKind::PramPartial,
                        &dist,
                        &ops,
                        config.clone(),
                        false,
                    )
                })
            },
        );
    }

    // And the full sweep as one unit, matching what the report tooling
    // regenerates.
    group.bench_function("full_sweep_n6", |b| b.iter(|| scenario_matrix(6, 4, 3)));
    group.finish();
}

fn emit_rows() {
    let rows: Vec<ScenarioMatrixRow> = scenario_matrix(8, 6, 11);
    println!("scenario_matrix rows (JSON lines):");
    for row in &rows {
        println!("{}", row.to_json());
    }
    println!("({} rows)", rows.len());
}

fn benches_with_rows(c: &mut Criterion) {
    bench_matrix_cells(c);
    emit_rows();
}

criterion_group!(benches, benches_with_rows);
criterion_main!(benches);
