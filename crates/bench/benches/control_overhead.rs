//! E1: control-information overhead per protocol as the system grows.
//!
//! For each system size, runs the standard synthetic workload under all
//! four protocols and reports the wall time of driving the whole simulated
//! deployment; the byte counts themselves are printed by the `efficiency`
//! binary — here Criterion tracks the simulation cost and keeps the
//! comparison honest across code changes.

use apps::workload::{execute, generate, WorkloadSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsm::{CausalFull, CausalPartial, PramPartial, Sequential};
use histories::Distribution;
use simnet::SimConfig;

fn workload(n: usize) -> (Distribution, Vec<apps::workload::WorkloadOp>) {
    let dist = Distribution::random(n, 2 * n, 2, 7);
    let spec = WorkloadSpec {
        ops_per_process: 8,
        write_ratio: 0.5,
        settle_every: 6,
        seed: 11,
    };
    let ops = generate(&dist, &spec);
    (dist, ops)
}

fn bench_control_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("control_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for n in [4usize, 8, 16] {
        let (dist, ops) = workload(n);
        group.bench_with_input(BenchmarkId::new("pram-partial", n), &n, |b, _| {
            b.iter(|| execute::<PramPartial>(&dist, &ops, SimConfig::default(), false))
        });
        group.bench_with_input(BenchmarkId::new("causal-partial", n), &n, |b, _| {
            b.iter(|| execute::<CausalPartial>(&dist, &ops, SimConfig::default(), false))
        });
        group.bench_with_input(BenchmarkId::new("causal-full", n), &n, |b, _| {
            b.iter(|| execute::<CausalFull>(&dist, &ops, SimConfig::default(), false))
        });
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| execute::<Sequential>(&dist, &ops, SimConfig::default(), false))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_control_overhead);
criterion_main!(benches);
