//! E1: control-information overhead per protocol as the system grows.
//!
//! For each system size, runs the standard synthetic workload under all
//! four protocols and reports the wall time of driving the whole simulated
//! deployment; the byte counts themselves are printed by the `efficiency`
//! binary — here Criterion tracks the simulation cost and keeps the
//! comparison honest across code changes. Protocols are selected at
//! runtime through the scenario engine — one bench body serves all four.

use apps::scenario::{generate_family_ops, run_script, SettlePolicy, WorkloadFamily};
use apps::WorkloadOp;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsm::ProtocolKind;
use histories::Distribution;
use simnet::SimConfig;

fn workload(n: usize) -> (Distribution, Vec<WorkloadOp>) {
    let dist = Distribution::random(n, 2 * n, 2, 7);
    let ops = generate_family_ops(
        &dist,
        &WorkloadFamily::Uniform { write_ratio: 0.5 },
        8,
        SettlePolicy::Every(6),
        11,
    );
    (dist, ops)
}

fn bench_control_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("control_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for n in [4usize, 8, 16] {
        let (dist, ops) = workload(n);
        for kind in ProtocolKind::ALL {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |b, _| {
                b.iter(|| run_script(kind, &dist, &ops, SimConfig::default(), false))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_control_overhead);
criterion_main!(benches);
