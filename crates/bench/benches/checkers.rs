//! E5: cost of the consistency checkers (Figures 4–6 classifications and
//! growing atomic histories) and of the share-graph analysis (Figures 1–2:
//! clique construction, hoop enumeration, Theorem 1 relevance sets).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use histories::checker::{check, Criterion as Crit};
use histories::figures;
use histories::hoop::enumerate_hoops;
use histories::relevance::relevant_processes;
use histories::{Distribution, HistoryBuilder, ProcId, ShareGraph, Value, VarId};

/// A sequentially consistent history of `ops` operations over `procs`
/// processes (single-copy semantics, round-robin issuing).
fn atomic_history(procs: usize, vars: usize, ops: usize) -> histories::History {
    let mut hb = HistoryBuilder::new(procs);
    let mut mem = vec![Value::Bottom; vars];
    let mut next = 1i64;
    for i in 0..ops {
        let p = ProcId(i % procs);
        let v = i % vars;
        if i % 3 == 0 {
            hb.write(p, VarId(v), next);
            mem[v] = Value::Int(next);
            next += 1;
        } else {
            hb.read(p, VarId(v), mem[v]);
        }
    }
    hb.build()
}

fn bench_figure_classification(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker_figures");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let cases = [
        ("fig4", figures::fig4_history()),
        ("fig5", figures::fig5_history()),
        ("fig6", figures::fig6_history()),
    ];
    for (name, h) in &cases {
        group.bench_function(*name, |b| {
            b.iter(|| {
                Crit::ALL
                    .iter()
                    .map(|&crit| check(h, crit).consistent)
                    .collect::<Vec<_>>()
            })
        });
    }
    group.finish();
}

fn bench_checker_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for ops in [12usize, 18, 24] {
        let h = atomic_history(3, 3, ops);
        group.bench_with_input(BenchmarkId::new("causal", ops), &ops, |b, _| {
            b.iter(|| check(&h, Crit::Causal).consistent)
        });
        group.bench_with_input(BenchmarkId::new("pram", ops), &ops, |b, _| {
            b.iter(|| check(&h, Crit::Pram).consistent)
        });
        group.bench_with_input(BenchmarkId::new("sequential", ops), &ops, |b, _| {
            b.iter(|| check(&h, Crit::Sequential).consistent)
        });
    }
    group.finish();
}

fn bench_share_graph_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("share_graph");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for n in [8usize, 16, 32] {
        let dist = Distribution::random(n, n, 2, 3);
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| ShareGraph::new(&dist))
        });
        let sg = ShareGraph::new(&dist);
        group.bench_with_input(BenchmarkId::new("hoops_x0", n), &n, |b, _| {
            b.iter(|| enumerate_hoops(&sg, VarId(0), 5).len())
        });
        group.bench_with_input(BenchmarkId::new("relevance_x0", n), &n, |b, _| {
            b.iter(|| relevant_processes(&dist, VarId(0), 5).len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_figure_classification,
    bench_checker_scaling,
    bench_share_graph_analysis
);
criterion_main!(benches);
