//! Application workloads beyond Bellman-Ford (the Lipton–Sandberg /
//! Sinha workload families the paper cites in §5): matrix product,
//! pipelined dynamic programming, asynchronous fixed-point iteration.
//! Every app driver takes its protocol as a runtime `ProtocolKind` value.

use apps::{run_jacobi, run_lcs, run_matrix_product, FixedPointProblem, Matrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsm::ProtocolKind;
use simnet::SimConfig;

fn matrix(n: usize) -> Matrix {
    Matrix::from_vec(n, n, (0..(n * n) as i64).map(|i| i % 7 - 3).collect())
}

fn bench_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix_product");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for n in [6usize, 10] {
        let a = matrix(n);
        let b = matrix(n);
        for kind in [ProtocolKind::PramPartial, ProtocolKind::CausalFull] {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &n, |bch, _| {
                bch.iter(|| run_matrix_product(kind, &a, &b, 3, SimConfig::default()))
            });
        }
    }
    group.finish();
}

fn bench_lcs(c: &mut Criterion) {
    let mut group = c.benchmark_group("lcs_pipeline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let a = b"ABCBDABABCBDABAB";
    let b_str = b"BDCABABABDCABABA";
    for kind in [ProtocolKind::PramPartial, ProtocolKind::CausalFull] {
        group.bench_function(kind.name(), |bch| {
            bch.iter(|| run_lcs(kind, a, b_str, 4, SimConfig::default()))
        });
    }
    group.finish();
}

fn bench_jacobi(c: &mut Criterion) {
    let mut group = c.benchmark_group("jacobi_fixed_point");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let p = FixedPointProblem::random(8, 0.5, 2);
    group.bench_function("pram-partial_fresh", |b| {
        b.iter(|| {
            run_jacobi(
                ProtocolKind::PramPartial,
                &p,
                1e-6,
                300,
                1,
                SimConfig::default(),
            )
        })
    });
    group.bench_function("pram-partial_stale", |b| {
        b.iter(|| {
            run_jacobi(
                ProtocolKind::PramPartial,
                &p,
                1e-6,
                300,
                4,
                SimConfig::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_matrix, bench_lcs, bench_jacobi);
criterion_main!(benches);
