//! E2: cost as the number of shared variables and the replication factor
//! grow, at a fixed process count. Both partial-replication protocols run
//! through the same runtime-dispatched engine call.

use apps::scenario::{generate_family_ops, run_script, SettlePolicy, WorkloadFamily};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsm::ProtocolKind;
use histories::Distribution;
use simnet::SimConfig;

const PARTIAL: [ProtocolKind; 2] = [ProtocolKind::PramPartial, ProtocolKind::CausalPartial];

fn bench_variable_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("variable_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for vars in [8usize, 32, 64] {
        let dist = Distribution::random(8, vars, 2, 3);
        let ops = generate_family_ops(
            &dist,
            &WorkloadFamily::Uniform { write_ratio: 0.5 },
            8,
            SettlePolicy::Every(6),
            5,
        );
        for kind in PARTIAL {
            group.bench_with_input(BenchmarkId::new(kind.name(), vars), &vars, |b, _| {
                b.iter(|| run_script(kind, &dist, &ops, SimConfig::default(), false))
            });
        }
    }
    group.finish();
}

fn bench_replication_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication_factor");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for replicas in [1usize, 3, 6, 12] {
        let dist = Distribution::random(12, 24, replicas, 5);
        let ops = generate_family_ops(
            &dist,
            &WorkloadFamily::Uniform { write_ratio: 0.5 },
            6,
            SettlePolicy::Every(6),
            9,
        );
        for kind in PARTIAL {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), replicas),
                &replicas,
                |b, _| b.iter(|| run_script(kind, &dist, &ops, SimConfig::default(), false)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_variable_scaling, bench_replication_factor);
criterion_main!(benches);
