//! E2: cost as the number of shared variables and the replication factor
//! grow, at a fixed process count.

use apps::workload::{execute, generate, WorkloadSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsm::{CausalPartial, PramPartial};
use histories::Distribution;
use simnet::SimConfig;

fn bench_variable_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("variable_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for vars in [8usize, 32, 64] {
        let dist = Distribution::random(8, vars, 2, 3);
        let spec = WorkloadSpec {
            ops_per_process: 8,
            write_ratio: 0.5,
            settle_every: 6,
            seed: 5,
        };
        let ops = generate(&dist, &spec);
        group.bench_with_input(BenchmarkId::new("pram-partial", vars), &vars, |b, _| {
            b.iter(|| execute::<PramPartial>(&dist, &ops, SimConfig::default(), false))
        });
        group.bench_with_input(BenchmarkId::new("causal-partial", vars), &vars, |b, _| {
            b.iter(|| execute::<CausalPartial>(&dist, &ops, SimConfig::default(), false))
        });
    }
    group.finish();
}

fn bench_replication_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication_factor");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for replicas in [1usize, 3, 6, 12] {
        let dist = Distribution::random(12, 24, replicas, 5);
        let spec = WorkloadSpec {
            ops_per_process: 6,
            write_ratio: 0.5,
            settle_every: 6,
            seed: 9,
        };
        let ops = generate(&dist, &spec);
        group.bench_with_input(BenchmarkId::new("pram-partial", replicas), &replicas, |b, _| {
            b.iter(|| execute::<PramPartial>(&dist, &ops, SimConfig::default(), false))
        });
        group.bench_with_input(
            BenchmarkId::new("causal-partial", replicas),
            &replicas,
            |b, _| b.iter(|| execute::<CausalPartial>(&dist, &ops, SimConfig::default(), false)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_variable_scaling, bench_replication_factor);
criterion_main!(benches);
