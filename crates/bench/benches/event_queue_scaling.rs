//! The event-queue hot path in isolation: push/pop churn versus the
//! batched same-timestamp drain, at the populations the large scenario
//! tier holds in flight (64, 256, 1024 queued events). The batched drain
//! is what `try_run_until_quiescent` rides — this bench pins its cost
//! relative to the classical one-pop loop on identical event streams.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simnet::event::{EventKind, EventQueue};
use simnet::{NodeId, SimTime};

/// A deterministic event stream with heavy timestamp collision: `n`
/// deliveries spread over 16 distinct timestamps, scheduled in LCG
/// order so heap inserts are not presorted.
fn filled_queue(n: u64) -> EventQueue<u64> {
    let mut queue = EventQueue::new();
    let mut state = 0x2545_f491_4f6c_dd1du64;
    for i in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let at = SimTime((state >> 32) % 16);
        queue.push(
            at,
            EventKind::Deliver {
                from: NodeId(0),
                to: NodeId(1),
                seq: i,
                payload: i,
            },
        );
    }
    queue
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_scaling");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));

    for &n in &[64u64, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut queue = filled_queue(n);
                let mut drained = 0u64;
                while let Some(event) = queue.pop() {
                    drained += event.order;
                }
                drained
            })
        });
        group.bench_with_input(BenchmarkId::new("batched_drain", n), &n, |b, &n| {
            b.iter(|| {
                let mut queue = filled_queue(n);
                let mut batch = Vec::new();
                let mut drained = 0u64;
                while queue.pop_ready_into(&mut batch) > 0 {
                    for event in batch.drain(..) {
                        drained += event.order;
                    }
                }
                drained
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
