//! Shared helpers for the benchmark harness: experiment runners that both
//! the Criterion benches and the report binaries (`figures`, `efficiency`)
//! reuse, so every number in `EXPERIMENTS.md` can be regenerated two ways.
//!
//! Every protocol comparison routes through the scenario engine
//! ([`apps::scenario`]): a comparison point is a workload script executed
//! by [`apps::scenario::run_script`] once per [`ProtocolKind`], with no
//! per-protocol code path anywhere in this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apps::scenario::{
    generate_family_ops, latency_label, run_script, standard_distributions, standard_latencies,
    standard_workloads, DistributionFamily, SettlePolicy, WorkloadFamily,
};
use apps::{run_bellman_ford, Network};
use dsm::ProtocolKind;
use histories::{Distribution, VarId};
use serde::{Deserialize, Serialize};
use simnet::SimConfig;

/// One row of an efficiency table: the cost of running a workload under one
/// protocol.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EfficiencyRow {
    /// Protocol measured.
    pub protocol: ProtocolKind,
    /// Number of processes.
    pub processes: usize,
    /// Number of shared variables.
    pub variables: usize,
    /// Messages sent.
    pub messages: u64,
    /// Data bytes sent.
    pub data_bytes: u64,
    /// Control bytes sent.
    pub control_bytes: u64,
    /// Control bytes per application operation.
    pub control_bytes_per_op: f64,
    /// Maximum (over variables) number of nodes that handled metadata about
    /// a single variable.
    pub max_relevant_nodes: usize,
    /// Mean replication factor of the distribution.
    pub replication_factor: f64,
}

/// Run the standard synthetic workload (`ops_per_process` ops, 50% writes)
/// under every protocol for the given distribution. This regenerates one
/// system-size point of experiments E1–E3.
pub fn efficiency_sweep_point(
    dist: &Distribution,
    ops_per_process: usize,
    seed: u64,
) -> Vec<EfficiencyRow> {
    let ops = generate_family_ops(
        dist,
        &WorkloadFamily::Uniform { write_ratio: 0.5 },
        ops_per_process,
        SettlePolicy::Every(6),
        seed,
    );
    ProtocolKind::ALL
        .iter()
        .map(|&kind| {
            let out = run_script(kind, dist, &ops, SimConfig::default(), false);
            let max_relevant = (0..dist.var_count())
                .map(|x| out.control.relevant_nodes(VarId(x)).len())
                .max()
                .unwrap_or(0);
            EfficiencyRow {
                protocol: kind,
                processes: dist.process_count(),
                variables: dist.var_count(),
                messages: out.messages(),
                data_bytes: out.data_bytes(),
                control_bytes: out.control_bytes(),
                control_bytes_per_op: out.control_bytes_per_op(),
                max_relevant_nodes: max_relevant,
                replication_factor: dist.mean_replication_factor(),
            }
        })
        .collect()
}

/// One row of the Bellman-Ford scaling table (experiment E4).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BellmanFordRow {
    /// Protocol measured.
    pub protocol: ProtocolKind,
    /// Network size.
    pub nodes: usize,
    /// Messages sent during the whole computation.
    pub messages: u64,
    /// Control bytes sent.
    pub control_bytes: u64,
    /// Scheduler rounds until convergence.
    pub rounds: usize,
    /// Whether the distances matched the sequential reference.
    pub correct: bool,
}

/// Run the distributed Bellman-Ford on a random reachable network of `n`
/// nodes under every protocol.
pub fn bellman_ford_point(n: usize, seed: u64) -> Vec<BellmanFordRow> {
    let net = Network::random_reachable(n, 2 * n, 9, seed);
    let reference = apps::shortest_paths_reference(&net, 0);
    ProtocolKind::ALL
        .iter()
        .map(|&kind| {
            let run = run_bellman_ford(kind, &net, 0, SimConfig::default());
            BellmanFordRow {
                protocol: kind,
                nodes: net.node_count(),
                messages: run.messages,
                control_bytes: run.control_bytes,
                rounds: run.rounds,
                correct: run.converged && run.distances == reference,
            }
        })
        .collect()
}

/// Fraction of processes that are x-relevant (Theorem 1) averaged over all
/// variables, for a distribution family (experiment E3).
pub fn relevance_fraction(dist: &Distribution, max_hoop_len: usize) -> f64 {
    let n = dist.process_count();
    if n == 0 || dist.var_count() == 0 {
        return 0.0;
    }
    let total: usize = (0..dist.var_count())
        .map(|x| histories::relevance::relevant_processes(dist, VarId(x), max_hoop_len).len())
        .sum();
    total as f64 / (n * dist.var_count()) as f64
}

/// The distribution families compared by experiment E3.
pub fn distribution_families(n: usize, seed: u64) -> Vec<(String, Distribution)> {
    [
        DistributionFamily::Full,
        DistributionFamily::DisjointBlocks,
        DistributionFamily::RingOverlap,
        DistributionFamily::Random { replicas: 2 },
        DistributionFamily::Random { replicas: 3 },
    ]
    .into_iter()
    .map(|family| (family.label(), family.build(n, n, seed)))
    .collect()
}

/// One cell of the scenario matrix: a (protocol, distribution family,
/// workload family, latency model) coordinate and its measured costs.
/// Serde-serializable so sweep results can be tracked as `BENCH_*.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioMatrixRow {
    /// Protocol name (see [`ProtocolKind::name`]).
    pub protocol: String,
    /// Distribution family label.
    pub distribution: String,
    /// Workload family label.
    pub workload: String,
    /// Latency model label.
    pub latency: String,
    /// Number of processes.
    pub processes: usize,
    /// Messages sent.
    pub messages: u64,
    /// Data bytes sent.
    pub data_bytes: u64,
    /// Control bytes sent.
    pub control_bytes: u64,
    /// Control bytes per application operation.
    pub control_bytes_per_op: f64,
    /// Virtual nanoseconds until quiescence.
    pub virtual_nanos: u64,
}

impl ScenarioMatrixRow {
    /// Hand-rolled JSON encoding (the vendored serde has no serializer
    /// backend; swap for `serde_json` when registry access is available).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"protocol\":\"{}\",\"distribution\":\"{}\",\"workload\":\"{}\",\"latency\":\"{}\",\
             \"processes\":{},\"messages\":{},\"data_bytes\":{},\"control_bytes\":{},\
             \"control_bytes_per_op\":{:.3},\"virtual_nanos\":{}}}",
            self.protocol,
            self.distribution,
            self.workload,
            self.latency,
            self.processes,
            self.messages,
            self.data_bytes,
            self.control_bytes,
            self.control_bytes_per_op,
            self.virtual_nanos
        )
    }
}

/// The standard scenario matrix: protocol × distribution family ×
/// workload family × latency model (the shared `standard_*` presets from
/// `apps::scenario`), at `n` processes. One engine call per cell — this is
/// the sweep space the paper's efficiency argument lives in.
pub fn scenario_matrix(n: usize, ops_per_process: usize, seed: u64) -> Vec<ScenarioMatrixRow> {
    let distributions = standard_distributions();
    let workloads = standard_workloads();
    let latencies = standard_latencies();
    let mut rows = Vec::new();
    for family in &distributions {
        let dist = family.build(n, 2 * n, seed);
        for workload in &workloads {
            let ops = generate_family_ops(
                &dist,
                workload,
                ops_per_process,
                SettlePolicy::Every(6),
                seed,
            );
            for latency in &latencies {
                let config = SimConfig {
                    latency: latency.clone(),
                    seed,
                    ..SimConfig::default()
                };
                for kind in ProtocolKind::ALL {
                    let out = run_script(kind, &dist, &ops, config.clone(), false);
                    rows.push(ScenarioMatrixRow {
                        protocol: kind.name().to_string(),
                        distribution: family.label(),
                        workload: workload.label().to_string(),
                        latency: latency_label(latency).to_string(),
                        processes: n,
                        messages: out.messages(),
                        data_bytes: out.data_bytes(),
                        control_bytes: out.control_bytes(),
                        control_bytes_per_op: out.control_bytes_per_op(),
                        virtual_nanos: out.virtual_time.as_nanos(),
                    });
                }
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_sweep_orders_protocols_as_the_paper_predicts() {
        let dist = Distribution::random(8, 12, 2, 1);
        let rows = efficiency_sweep_point(&dist, 8, 5);
        assert_eq!(rows.len(), 4);
        let pram = &rows[0];
        let cpart = &rows[1];
        let cfull = &rows[2];
        assert_eq!(pram.protocol, ProtocolKind::PramPartial);
        assert_eq!(cpart.protocol, ProtocolKind::CausalPartial);
        assert_eq!(cfull.protocol, ProtocolKind::CausalFull);
        assert!(pram.control_bytes < cpart.control_bytes);
        assert!(pram.control_bytes < cfull.control_bytes);
        // PRAM metadata never reaches more nodes than the replica set.
        assert!(pram.max_relevant_nodes <= 3);
        // Causal partial metadata reaches every node for some variable.
        assert_eq!(cpart.max_relevant_nodes, 8);
    }

    #[test]
    fn bellman_ford_point_is_correct_for_all_protocols() {
        for row in bellman_ford_point(8, 3) {
            assert!(row.correct, "{:?}", row.protocol);
            assert!(row.messages > 0);
        }
    }

    #[test]
    fn relevance_fractions_by_family() {
        let families = distribution_families(8, 2);
        assert_eq!(families.len(), 5);
        let lookup = |name: &str| {
            families
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, d)| relevance_fraction(d, 8))
                .unwrap()
        };
        assert_eq!(lookup("full"), 1.0);
        assert!(lookup("disjoint-blocks") < 0.2);
        // Ring overlap creates hoops around the ring, making most processes
        // relevant despite a replication factor of 2.
        assert!(lookup("ring-overlap") > lookup("disjoint-blocks"));
    }

    #[test]
    fn scenario_matrix_covers_the_full_sweep() {
        let rows = scenario_matrix(6, 4, 3);
        // 3 distributions × 4 workloads × 3 latencies × 4 protocols.
        let expected = standard_distributions().len()
            * standard_workloads().len()
            * standard_latencies().len()
            * ProtocolKind::ALL.len();
        assert_eq!(rows.len(), expected);
        assert_eq!(expected, 144);
        assert!(rows.iter().all(|r| r.messages > 0 || r.control_bytes == 0));
        // Within every (distribution, workload, latency) cell, PRAM partial
        // never spends more control bytes than causal partial.
        for chunk in rows.chunks(4) {
            let pram = chunk
                .iter()
                .find(|r| r.protocol == ProtocolKind::PramPartial.name())
                .unwrap();
            let cpart = chunk
                .iter()
                .find(|r| r.protocol == ProtocolKind::CausalPartial.name())
                .unwrap();
            assert!(
                pram.control_bytes <= cpart.control_bytes,
                "{}/{}/{}",
                pram.distribution,
                pram.workload,
                pram.latency
            );
        }
        // Rows serialize to JSON object lines.
        let json = rows[0].to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"control_bytes\""));
    }
}
