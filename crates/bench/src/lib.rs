//! Shared helpers for the benchmark harness: experiment runners that both
//! the Criterion benches and the report binaries (`figures`, `efficiency`)
//! reuse, so every number in `EXPERIMENTS.md` can be regenerated two ways.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apps::workload::{execute, generate, WorkloadSpec};
use apps::{run_bellman_ford, Network};
use dsm::{CausalFull, CausalPartial, PramPartial, ProtocolKind, Sequential};
use histories::{Distribution, VarId};
use simnet::SimConfig;

/// One row of an efficiency table: the cost of running a workload under one
/// protocol.
#[derive(Clone, Debug)]
pub struct EfficiencyRow {
    /// Protocol measured.
    pub protocol: ProtocolKind,
    /// Number of processes.
    pub processes: usize,
    /// Number of shared variables.
    pub variables: usize,
    /// Messages sent.
    pub messages: u64,
    /// Data bytes sent.
    pub data_bytes: u64,
    /// Control bytes sent.
    pub control_bytes: u64,
    /// Control bytes per application operation.
    pub control_bytes_per_op: f64,
    /// Maximum (over variables) number of nodes that handled metadata about
    /// a single variable.
    pub max_relevant_nodes: usize,
    /// Mean replication factor of the distribution.
    pub replication_factor: f64,
}

/// Run the standard synthetic workload (`ops_per_process` ops, 50% writes)
/// under every protocol for the given distribution. This regenerates one
/// system-size point of experiments E1–E3.
pub fn efficiency_sweep_point(
    dist: &Distribution,
    ops_per_process: usize,
    seed: u64,
) -> Vec<EfficiencyRow> {
    let spec = WorkloadSpec {
        ops_per_process,
        write_ratio: 0.5,
        settle_every: 6,
        seed,
    };
    let ops = generate(dist, &spec);

    fn row<P: dsm::ProtocolSpec>(
        dist: &Distribution,
        ops: &[apps::workload::WorkloadOp],
        kind: ProtocolKind,
    ) -> EfficiencyRow {
        let out = execute::<P>(dist, ops, SimConfig::default(), false);
        let max_relevant = (0..dist.var_count())
            .map(|x| out.control.relevant_nodes(VarId(x)).len())
            .max()
            .unwrap_or(0);
        EfficiencyRow {
            protocol: kind,
            processes: dist.process_count(),
            variables: dist.var_count(),
            messages: out.messages,
            data_bytes: out.data_bytes,
            control_bytes: out.control_bytes,
            control_bytes_per_op: out.control_bytes_per_op(),
            max_relevant_nodes: max_relevant,
            replication_factor: dist.mean_replication_factor(),
        }
    }

    vec![
        row::<PramPartial>(dist, &ops, ProtocolKind::PramPartial),
        row::<CausalPartial>(dist, &ops, ProtocolKind::CausalPartial),
        row::<CausalFull>(dist, &ops, ProtocolKind::CausalFull),
        row::<Sequential>(dist, &ops, ProtocolKind::Sequential),
    ]
}

/// One row of the Bellman-Ford scaling table (experiment E4).
#[derive(Clone, Debug)]
pub struct BellmanFordRow {
    /// Protocol measured.
    pub protocol: ProtocolKind,
    /// Network size.
    pub nodes: usize,
    /// Messages sent during the whole computation.
    pub messages: u64,
    /// Control bytes sent.
    pub control_bytes: u64,
    /// Scheduler rounds until convergence.
    pub rounds: usize,
    /// Whether the distances matched the sequential reference.
    pub correct: bool,
}

/// Run the distributed Bellman-Ford on a random reachable network of `n`
/// nodes under every protocol.
pub fn bellman_ford_point(n: usize, seed: u64) -> Vec<BellmanFordRow> {
    let net = Network::random_reachable(n, 2 * n, 9, seed);
    let reference = apps::shortest_paths_reference(&net, 0);

    fn row<P: dsm::ProtocolSpec>(
        net: &Network,
        reference: &[i64],
        kind: ProtocolKind,
    ) -> BellmanFordRow {
        let run = run_bellman_ford::<P>(net, 0, SimConfig::default());
        BellmanFordRow {
            protocol: kind,
            nodes: net.node_count(),
            messages: run.messages,
            control_bytes: run.control_bytes,
            rounds: run.rounds,
            correct: run.converged && run.distances == reference,
        }
    }

    vec![
        row::<PramPartial>(&net, &reference, ProtocolKind::PramPartial),
        row::<CausalPartial>(&net, &reference, ProtocolKind::CausalPartial),
        row::<CausalFull>(&net, &reference, ProtocolKind::CausalFull),
        row::<Sequential>(&net, &reference, ProtocolKind::Sequential),
    ]
}

/// Fraction of processes that are x-relevant (Theorem 1) averaged over all
/// variables, for a distribution family (experiment E3).
pub fn relevance_fraction(dist: &Distribution, max_hoop_len: usize) -> f64 {
    let n = dist.process_count();
    if n == 0 || dist.var_count() == 0 {
        return 0.0;
    }
    let total: usize = (0..dist.var_count())
        .map(|x| histories::relevance::relevant_processes(dist, VarId(x), max_hoop_len).len())
        .sum();
    total as f64 / (n * dist.var_count()) as f64
}

/// The distribution families compared by experiment E3.
pub fn distribution_families(n: usize, seed: u64) -> Vec<(&'static str, Distribution)> {
    vec![
        ("full", Distribution::full(n, n)),
        ("disjoint-blocks", Distribution::disjoint_blocks(n, n)),
        ("ring-overlap", Distribution::ring_overlap(n)),
        ("random-2", Distribution::random(n, n, 2.min(n), seed)),
        ("random-3", Distribution::random(n, n, 3.min(n), seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_sweep_orders_protocols_as_the_paper_predicts() {
        let dist = Distribution::random(8, 12, 2, 1);
        let rows = efficiency_sweep_point(&dist, 8, 5);
        assert_eq!(rows.len(), 4);
        let pram = &rows[0];
        let cpart = &rows[1];
        let cfull = &rows[2];
        assert_eq!(pram.protocol, ProtocolKind::PramPartial);
        assert!(pram.control_bytes < cpart.control_bytes);
        assert!(pram.control_bytes < cfull.control_bytes);
        // PRAM metadata never reaches more nodes than the replica set.
        assert!(pram.max_relevant_nodes <= 3);
        // Causal partial metadata reaches every node for some variable.
        assert_eq!(cpart.max_relevant_nodes, 8);
    }

    #[test]
    fn bellman_ford_point_is_correct_for_all_protocols() {
        for row in bellman_ford_point(8, 3) {
            assert!(row.correct, "{:?}", row.protocol);
            assert!(row.messages > 0);
        }
    }

    #[test]
    fn relevance_fractions_by_family() {
        let families = distribution_families(8, 2);
        assert_eq!(families.len(), 5);
        let lookup = |name: &str| {
            families
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, d)| relevance_fraction(d, 8))
                .unwrap()
        };
        assert_eq!(lookup("full"), 1.0);
        assert!(lookup("disjoint-blocks") < 0.2);
        // Ring overlap creates hoops around the ring, making most processes
        // relevant despite a replication factor of 2.
        assert!(lookup("ring-overlap") > lookup("disjoint-blocks"));
    }
}
