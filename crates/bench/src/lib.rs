//! Shared helpers for the benchmark harness: experiment runners that both
//! the Criterion benches and the report binaries (`figures`, `efficiency`)
//! reuse, so every number in `EXPERIMENTS.md` can be regenerated two ways.
//!
//! Every protocol comparison routes through the scenario engine
//! ([`apps::scenario`]): a comparison point is a workload script executed
//! by [`apps::scenario::run_script`] once per [`ProtocolKind`], with no
//! per-protocol code path anywhere in this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apps::scenario::{
    effective_sweep_workers, generate_family_ops, latency_label, parallel_map, run_script,
    run_script_backend, run_script_faulted, standard_deliveries, standard_distributions,
    standard_faults, standard_latencies, standard_topologies, standard_workloads, CrashSchedule,
    DistributionFamily, FaultFamily, SettlePolicy, TopologyFamily, WorkloadFamily,
};
use apps::workload::WorkloadOp;
use apps::{run_bellman_ford, Network};
use dsm::ProtocolKind;
use histories::{causal_spot_check, pram_spot_check, Distribution, VarId};
use serde::{Deserialize, Serialize};
use simnet::{DeliveryMode, ExecBackend, LatencyModel, SimConfig, ThreadedMode};

/// One row of an efficiency table: the cost of running a workload under one
/// protocol.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EfficiencyRow {
    /// Protocol measured.
    pub protocol: ProtocolKind,
    /// Number of processes.
    pub processes: usize,
    /// Number of shared variables.
    pub variables: usize,
    /// Messages sent.
    pub messages: u64,
    /// Data bytes sent.
    pub data_bytes: u64,
    /// Control bytes sent.
    pub control_bytes: u64,
    /// Control bytes per application operation.
    pub control_bytes_per_op: f64,
    /// Maximum (over variables) number of nodes that handled metadata about
    /// a single variable.
    pub max_relevant_nodes: usize,
    /// Mean replication factor of the distribution.
    pub replication_factor: f64,
}

/// Run the standard synthetic workload (`ops_per_process` ops, 50% writes)
/// under every protocol for the given distribution. This regenerates one
/// system-size point of experiments E1–E3.
pub fn efficiency_sweep_point(
    dist: &Distribution,
    ops_per_process: usize,
    seed: u64,
) -> Vec<EfficiencyRow> {
    let ops = generate_family_ops(
        dist,
        &WorkloadFamily::Uniform { write_ratio: 0.5 },
        ops_per_process,
        SettlePolicy::Every(6),
        seed,
    );
    ProtocolKind::ALL
        .iter()
        .map(|&kind| {
            let out = run_script(kind, dist, &ops, SimConfig::default(), false);
            let max_relevant = (0..dist.var_count())
                .map(|x| out.control.relevant_nodes(VarId(x)).len())
                .max()
                .unwrap_or(0);
            EfficiencyRow {
                protocol: kind,
                processes: dist.process_count(),
                variables: dist.var_count(),
                messages: out.messages(),
                data_bytes: out.data_bytes(),
                control_bytes: out.control_bytes(),
                control_bytes_per_op: out.control_bytes_per_op(),
                max_relevant_nodes: max_relevant,
                replication_factor: dist.mean_replication_factor(),
            }
        })
        .collect()
}

/// One row of the Bellman-Ford scaling table (experiment E4).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BellmanFordRow {
    /// Protocol measured.
    pub protocol: ProtocolKind,
    /// Network size.
    pub nodes: usize,
    /// Messages sent during the whole computation.
    pub messages: u64,
    /// Control bytes sent.
    pub control_bytes: u64,
    /// Scheduler rounds until convergence.
    pub rounds: usize,
    /// Whether the distances matched the sequential reference.
    pub correct: bool,
}

/// Run the distributed Bellman-Ford on a random reachable network of `n`
/// nodes under every protocol.
pub fn bellman_ford_point(n: usize, seed: u64) -> Vec<BellmanFordRow> {
    let net = Network::random_reachable(n, 2 * n, 9, seed);
    let reference = apps::shortest_paths_reference(&net, 0);
    ProtocolKind::ALL
        .iter()
        .map(|&kind| {
            let run = run_bellman_ford(kind, &net, 0, SimConfig::default());
            BellmanFordRow {
                protocol: kind,
                nodes: net.node_count(),
                messages: run.messages,
                control_bytes: run.control_bytes,
                rounds: run.rounds,
                correct: run.converged && run.distances == reference,
            }
        })
        .collect()
}

/// Fraction of processes that are x-relevant (Theorem 1) averaged over all
/// variables, for a distribution family (experiment E3).
pub fn relevance_fraction(dist: &Distribution, max_hoop_len: usize) -> f64 {
    let n = dist.process_count();
    if n == 0 || dist.var_count() == 0 {
        return 0.0;
    }
    let total: usize = (0..dist.var_count())
        .map(|x| histories::relevance::relevant_processes(dist, VarId(x), max_hoop_len).len())
        .sum();
    total as f64 / (n * dist.var_count()) as f64
}

/// The distribution families compared by experiment E3.
pub fn distribution_families(n: usize, seed: u64) -> Vec<(String, Distribution)> {
    [
        DistributionFamily::Full,
        DistributionFamily::DisjointBlocks,
        DistributionFamily::RingOverlap,
        DistributionFamily::Random { replicas: 2 },
        DistributionFamily::Random { replicas: 3 },
    ]
    .into_iter()
    .map(|family| (family.label(), family.build(n, n, seed)))
    .collect()
}

/// One cell of the scenario matrix: a (protocol, distribution family,
/// workload family, latency model, topology family, delivery mode)
/// coordinate and its measured costs. Serde-serializable so sweep results
/// can be tracked as `BENCH_*.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioMatrixRow {
    /// Protocol name (see [`ProtocolKind::name`]).
    pub protocol: String,
    /// Distribution family label.
    pub distribution: String,
    /// Workload family label.
    pub workload: String,
    /// Latency model label.
    pub latency: String,
    /// Topology family label (`mesh` = direct sends, anything else runs
    /// over the overlay routing layer).
    pub topology: String,
    /// Delivery-mode label (see [`DeliveryMode::label`]; `unicast` is the
    /// classical wire format).
    pub delivery: String,
    /// Fault-family label (see [`FaultFamily::label`]; `none` is the
    /// paper's reliable model).
    pub fault: String,
    /// Number of processes.
    pub processes: usize,
    /// Messages sent (per hop: relayed envelopes count once per link).
    pub messages: u64,
    /// Data bytes sent.
    pub data_bytes: u64,
    /// Control bytes sent.
    pub control_bytes: u64,
    /// Control bytes per application operation.
    pub control_bytes_per_op: f64,
    /// Transit envelopes forwarded by intermediate nodes (0 on the mesh).
    pub forwarded: u64,
    /// Transmissions dropped and retransmitted by the fault schedule.
    pub drops: u64,
    /// Duplicate copies delivered and discarded by link layers.
    pub duplicates: u64,
    /// Virtual nanoseconds until quiescence.
    pub virtual_nanos: u64,
    /// Event-buffer-pool acquisitions served from a free list during the
    /// cell's run (deterministic, like every non-wall-clock column).
    pub pool_hits: u64,
    /// Event-buffer-pool acquisitions that had to allocate fresh.
    pub pool_misses: u64,
    /// Worker threads the sweep's [`apps::scenario::parallel_map`] fan-out
    /// actually used (identical for every row of one sweep; recorded so a
    /// checked-in JSON names the parallelism it was produced under).
    pub sweep_workers: usize,
}

impl ScenarioMatrixRow {
    /// The sweep coordinate of this row (everything that identifies the
    /// cell, nothing that measures it).
    pub fn coordinate(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}/{}/{}/{}",
            self.protocol,
            self.distribution,
            self.workload,
            self.latency,
            self.topology,
            self.delivery,
            self.fault,
            self.processes
        )
    }

    /// Hand-rolled JSON encoding (the vendored serde has no serializer
    /// backend; swap for `serde_json` when registry access is available).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"protocol\":\"{}\",\"distribution\":\"{}\",\"workload\":\"{}\",\"latency\":\"{}\",\
             \"topology\":\"{}\",\"delivery\":\"{}\",\"fault\":\"{}\",\"processes\":{},\
             \"messages\":{},\"data_bytes\":{},\"control_bytes\":{},\"control_bytes_per_op\":{:.3},\
             \"forwarded\":{},\"drops\":{},\"duplicates\":{},\"virtual_nanos\":{},\
             \"pool_hits\":{},\"pool_misses\":{},\"sweep_workers\":{}}}",
            self.protocol,
            self.distribution,
            self.workload,
            self.latency,
            self.topology,
            self.delivery,
            self.fault,
            self.processes,
            self.messages,
            self.data_bytes,
            self.control_bytes,
            self.control_bytes_per_op,
            self.forwarded,
            self.drops,
            self.duplicates,
            self.virtual_nanos,
            self.pool_hits,
            self.pool_misses,
            self.sweep_workers
        )
    }

    /// Parse a row back out of [`ScenarioMatrixRow::to_json`]'s encoding
    /// (tolerates surrounding whitespace and a trailing comma, so the
    /// lines of a checked-in JSON array parse directly). Returns `None`
    /// for lines that are not row objects.
    pub fn from_json(line: &str) -> Option<ScenarioMatrixRow> {
        fn str_field(line: &str, key: &str) -> Option<String> {
            let tag = format!("\"{key}\":\"");
            let start = line.find(&tag)? + tag.len();
            let end = line[start..].find('"')? + start;
            Some(line[start..end].to_string())
        }
        fn num_field(line: &str, key: &str) -> Option<String> {
            let tag = format!("\"{key}\":");
            let start = line.find(&tag)? + tag.len();
            let end = line[start..]
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
                .map(|i| i + start)
                .unwrap_or(line.len());
            Some(line[start..end].to_string())
        }
        Some(ScenarioMatrixRow {
            protocol: str_field(line, "protocol")?,
            distribution: str_field(line, "distribution")?,
            workload: str_field(line, "workload")?,
            latency: str_field(line, "latency")?,
            topology: str_field(line, "topology")?,
            delivery: str_field(line, "delivery")?,
            fault: str_field(line, "fault")?,
            processes: num_field(line, "processes")?.parse().ok()?,
            messages: num_field(line, "messages")?.parse().ok()?,
            data_bytes: num_field(line, "data_bytes")?.parse().ok()?,
            control_bytes: num_field(line, "control_bytes")?.parse().ok()?,
            control_bytes_per_op: num_field(line, "control_bytes_per_op")?.parse().ok()?,
            forwarded: num_field(line, "forwarded")?.parse().ok()?,
            drops: num_field(line, "drops")?.parse().ok()?,
            duplicates: num_field(line, "duplicates")?.parse().ok()?,
            virtual_nanos: num_field(line, "virtual_nanos")?.parse().ok()?,
            // Columns added after a baseline was recorded default to zero,
            // so older checked-in `BENCH_*.json` rows keep parsing (the
            // baseline gate compares control bytes only).
            pool_hits: num_field(line, "pool_hits")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            pool_misses: num_field(line, "pool_misses")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            sweep_workers: num_field(line, "sweep_workers")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
        })
    }
}

/// One prepared cell of the scenario matrix, ready to execute.
struct MatrixCell {
    kind: ProtocolKind,
    distribution: String,
    workload: String,
    latency: String,
    topology: String,
    delivery: String,
    fault: String,
    dist: Distribution,
    ops: std::sync::Arc<Vec<WorkloadOp>>,
    config: SimConfig,
    crash: Option<CrashSchedule>,
}

/// The standard scenario matrix: protocol × distribution family ×
/// workload family × latency model × topology family × delivery mode ×
/// fault family (the shared `standard_*` presets from `apps::scenario`),
/// at `n` processes. One engine call per cell — this is the sweep space
/// the paper's efficiency argument lives in. Latency models are swept on
/// the mesh and delivery modes under the default latency; sparse
/// topologies (whose per-hop behaviour is the point) run under the
/// default model, and fault families under the default latency *and*
/// wire format, matching the `scenario_tour` example.
///
/// Cells are independent deterministic simulations, so they execute on a
/// scoped-thread fan-out ([`apps::scenario::parallel_map`]); the returned
/// rows are in sweep order, bit-identical to a sequential run. The fault
/// schedules are seeded, so fault rows are as reproducible as the rest —
/// the `baseline --check` CI gate covers them too.
pub fn scenario_matrix(n: usize, ops_per_process: usize, seed: u64) -> Vec<ScenarioMatrixRow> {
    let distributions = standard_distributions();
    let workloads = standard_workloads();
    let latencies = standard_latencies();
    let topologies = standard_topologies();
    let deliveries = standard_deliveries();
    let faults = standard_faults();
    let mut cells = Vec::new();
    for topology_family in &topologies {
        for family in &distributions {
            let dist = family.build(n, 2 * n, seed);
            for workload in &workloads {
                let ops = std::sync::Arc::new(generate_family_ops(
                    &dist,
                    workload,
                    ops_per_process,
                    SettlePolicy::Every(6),
                    seed,
                ));
                for latency in &latencies {
                    if *topology_family != TopologyFamily::FullMesh
                        && *latency != LatencyModel::default()
                    {
                        continue;
                    }
                    for &delivery in &deliveries {
                        if delivery != DeliveryMode::default()
                            && *latency != LatencyModel::default()
                        {
                            continue;
                        }
                        for &fault in &faults {
                            if fault != FaultFamily::None
                                && (*latency != LatencyModel::default()
                                    || delivery != DeliveryMode::default())
                            {
                                continue;
                            }
                            let topology = match topology_family {
                                TopologyFamily::FullMesh => None,
                                f => Some(f.build(n)),
                            };
                            let config = SimConfig {
                                latency: latency.clone(),
                                seed,
                                topology,
                                delivery,
                                faults: fault.fault_plan(seed),
                                ..SimConfig::default()
                            };
                            let crash = fault.crash_schedule(&ops, n);
                            for kind in ProtocolKind::ALL {
                                cells.push(MatrixCell {
                                    kind,
                                    distribution: family.label(),
                                    workload: workload.label().to_string(),
                                    latency: latency_label(latency).to_string(),
                                    topology: topology_family.label().to_string(),
                                    delivery: delivery.label().to_string(),
                                    fault: fault.label().to_string(),
                                    dist: dist.clone(),
                                    ops: std::sync::Arc::clone(&ops),
                                    config: config.clone(),
                                    crash,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    let sweep_workers = effective_sweep_workers(cells.len());
    parallel_map(cells, |cell| {
        let out = run_script_faulted(
            cell.kind,
            &cell.dist,
            &cell.ops,
            cell.config,
            false,
            cell.crash,
        );
        ScenarioMatrixRow {
            protocol: cell.kind.name().to_string(),
            distribution: cell.distribution,
            workload: cell.workload,
            latency: cell.latency,
            topology: cell.topology,
            delivery: cell.delivery,
            fault: cell.fault,
            processes: n,
            messages: out.messages(),
            data_bytes: out.data_bytes(),
            control_bytes: out.control_bytes(),
            control_bytes_per_op: out.control_bytes_per_op(),
            forwarded: out.forwarded,
            drops: out.drops(),
            duplicates: out.duplicates(),
            virtual_nanos: out.virtual_time.as_nanos(),
            pool_hits: out.pool.hits,
            pool_misses: out.pool.misses,
            sweep_workers,
        }
    })
}

/// One row of the routed-vs-mesh comparison (experiment E5): the same
/// workload under one protocol, on one topology family, with its control
/// bytes relative to the full-mesh run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoutedEfficiencyRow {
    /// Topology family label.
    pub topology: String,
    /// Protocol measured.
    pub protocol: ProtocolKind,
    /// Messages on the wire (per hop).
    pub messages: u64,
    /// Transit envelopes forwarded by intermediate nodes.
    pub forwarded: u64,
    /// Control bytes on the wire (per hop).
    pub control_bytes: u64,
    /// This topology's control bytes divided by the full-mesh run's (1.0
    /// on the mesh itself; the overlay's relaying overhead elsewhere).
    pub control_ratio_vs_mesh: f64,
}

/// Run the standard synthetic workload under every protocol on every
/// standard topology family and report each cell's control-byte cost
/// relative to the full mesh. The workload script is identical across
/// topologies — only the transport changes — so the ratio isolates what
/// overlay routing costs on the wire.
pub fn routed_vs_mesh_sweep(
    n: usize,
    ops_per_process: usize,
    seed: u64,
) -> Vec<RoutedEfficiencyRow> {
    let dist = Distribution::random(n, 2 * n, 2, seed);
    let ops = generate_family_ops(
        &dist,
        &WorkloadFamily::Uniform { write_ratio: 0.5 },
        ops_per_process,
        SettlePolicy::Every(6),
        seed,
    );
    // Measure the mesh baseline first, independently of where (or
    // whether) FullMesh appears in the standard topology list.
    let mesh_control: std::collections::BTreeMap<ProtocolKind, u64> = ProtocolKind::ALL
        .iter()
        .map(|&kind| {
            let config = SimConfig {
                seed,
                ..SimConfig::default()
            };
            let out = run_script(kind, &dist, &ops, config, false);
            (kind, out.control_bytes())
        })
        .collect();
    let mut rows = Vec::new();
    for family in standard_topologies() {
        let topology = match &family {
            TopologyFamily::FullMesh => None,
            f => Some(f.build(n)),
        };
        let config = SimConfig {
            seed,
            topology,
            ..SimConfig::default()
        };
        for kind in ProtocolKind::ALL {
            let out = run_script(kind, &dist, &ops, config.clone(), false);
            let control = out.control_bytes();
            let mesh = mesh_control[&kind];
            rows.push(RoutedEfficiencyRow {
                topology: family.label().to_string(),
                protocol: kind,
                messages: out.messages(),
                forwarded: out.forwarded,
                control_bytes: control,
                control_ratio_vs_mesh: if mesh == 0 {
                    1.0
                } else {
                    control as f64 / mesh as f64
                },
            });
        }
    }
    rows
}

/// One row of the delivery-mode comparison (experiment E6): the same
/// workload under one protocol, on one sparse topology, under one
/// [`DeliveryMode`], with control bytes relative to the unicast/unbatched
/// wire on the same topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeliveryEfficiencyRow {
    /// Topology family label.
    pub topology: String,
    /// Delivery-mode label.
    pub delivery: String,
    /// Protocol measured.
    pub protocol: ProtocolKind,
    /// Messages on the wire (per hop / per tree edge).
    pub messages: u64,
    /// Transit envelopes forwarded by intermediate nodes.
    pub forwarded: u64,
    /// Control bytes on the wire.
    pub control_bytes: u64,
    /// This mode's control bytes divided by the unicast/unbatched run's
    /// on the same topology (1.0 for the baseline mode itself; the wire
    /// saving of tree multicast and record batching elsewhere).
    pub control_ratio_vs_unicast: f64,
}

/// Run the standard synthetic workload under every protocol and every
/// delivery mode on the star and grid topologies, reporting each cell's
/// control-byte cost relative to the classical unicast/unbatched wire.
/// The workload script, the topology, and the routing are identical
/// across modes — only the wire format changes — so the ratio isolates
/// what tree multicast and control-record batching save. This is the
/// E6 table: the measured answer to "how much of the fan-out cost was
/// redundant copies of identical bytes".
///
/// The script settles once at the end: batching amortizes a full vector
/// clock over the records that accumulate per destination *between*
/// delivery rounds, so the bulk-phase regime (many writes in flight per
/// settle) is where its asymptotic saving shows. Per-op settling leaves
/// every batch at size one, which by construction costs exactly the
/// unbatched wire.
pub fn delivery_mode_sweep(
    n: usize,
    ops_per_process: usize,
    seed: u64,
) -> Vec<DeliveryEfficiencyRow> {
    let dist = Distribution::random(n, 2 * n, 2, seed);
    let ops = generate_family_ops(
        &dist,
        &WorkloadFamily::Uniform { write_ratio: 0.5 },
        ops_per_process,
        SettlePolicy::AtEnd,
        seed,
    );
    let mut rows = Vec::new();
    for family in [TopologyFamily::Star, TopologyFamily::Grid] {
        let run_mode = |delivery: DeliveryMode, kind: ProtocolKind| {
            let config = SimConfig {
                seed,
                topology: Some(family.build(n)),
                delivery,
                ..SimConfig::default()
            };
            run_script(kind, &dist, &ops, config, false)
        };
        // DeliveryMode::ALL leads with the unicast baseline, so each
        // protocol's reference control bytes are captured by the first
        // iteration — every cell is simulated exactly once.
        let mut unicast_control = std::collections::BTreeMap::new();
        for delivery in DeliveryMode::ALL {
            for kind in ProtocolKind::ALL {
                let out = run_mode(delivery, kind);
                let control = out.control_bytes();
                let base = *unicast_control.entry(kind).or_insert(control);
                rows.push(DeliveryEfficiencyRow {
                    topology: family.label().to_string(),
                    delivery: delivery.label().to_string(),
                    protocol: kind,
                    messages: out.messages(),
                    forwarded: out.forwarded,
                    control_bytes: control,
                    control_ratio_vs_unicast: if base == 0 {
                        1.0
                    } else {
                        control as f64 / base as f64
                    },
                });
            }
        }
    }
    rows
}

/// One row of the fault-tolerance comparison (experiment E7): the same
/// workload under one protocol, on one topology, under one
/// [`FaultFamily`], with control bytes and virtual time relative to the
/// fault-free run on the same topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultToleranceRow {
    /// Topology family label.
    pub topology: String,
    /// Fault-family label.
    pub fault: String,
    /// Protocol measured.
    pub protocol: ProtocolKind,
    /// Messages on the wire.
    pub messages: u64,
    /// Transmissions dropped and retransmitted.
    pub drops: u64,
    /// Duplicate copies delivered and discarded by link layers.
    pub duplicates: u64,
    /// Deliveries lost at a crashed node.
    pub crash_losses: u64,
    /// Control bytes on the wire (retransmissions and catch-up traffic
    /// included).
    pub control_bytes: u64,
    /// This fault family's control bytes divided by the fault-free run's
    /// on the same topology (1.0 for the baseline itself; the recovery
    /// overhead elsewhere).
    pub control_ratio_vs_faultfree: f64,
    /// This fault family's virtual completion time divided by the
    /// fault-free run's (retransmit delays and recovery rounds show up
    /// here).
    pub virtual_ratio_vs_faultfree: f64,
}

/// Run a race-free (producer/consumer) workload under every protocol and
/// every fault family on the mesh, star, and grid, reporting each cell's
/// control-byte and virtual-time cost relative to the fault-free run on
/// the same topology. The workload, topology, and wire format are
/// identical across fault families — only the fault schedule changes —
/// and the differential tests pin that link faults leave the delivered
/// histories identical, so the ratios isolate exactly what reliability
/// costs: retransmissions, duplicate copies, and the crash-restart
/// catch-up handshake. This is the E7 table.
pub fn fault_tolerance_sweep(
    n: usize,
    ops_per_process: usize,
    seed: u64,
) -> Vec<FaultToleranceRow> {
    let dist = Distribution::random(n, 2 * n, 2, seed);
    let ops = generate_family_ops(
        &dist,
        &WorkloadFamily::ProducerConsumer,
        ops_per_process,
        SettlePolicy::Every(6),
        seed,
    );
    let mut rows = Vec::new();
    for family in [
        TopologyFamily::FullMesh,
        TopologyFamily::Star,
        TopologyFamily::Grid,
    ] {
        // standard_faults() leads with the fault-free baseline, so each
        // protocol's reference numbers are captured by the first
        // iteration — every cell is simulated exactly once.
        let mut baseline: std::collections::BTreeMap<ProtocolKind, (u64, u64)> =
            std::collections::BTreeMap::new();
        for fault in standard_faults() {
            for kind in ProtocolKind::ALL {
                let config = SimConfig {
                    seed,
                    topology: match &family {
                        TopologyFamily::FullMesh => None,
                        f => Some(f.build(n)),
                    },
                    faults: fault.fault_plan(seed),
                    ..SimConfig::default()
                };
                let crash = fault.crash_schedule(&ops, n);
                let out = run_script_faulted(kind, &dist, &ops, config, false, crash);
                let control = out.control_bytes();
                let nanos = out.virtual_time.as_nanos().max(1);
                let (base_control, base_nanos) = *baseline.entry(kind).or_insert((control, nanos));
                rows.push(FaultToleranceRow {
                    topology: family.label().to_string(),
                    fault: fault.label().to_string(),
                    protocol: kind,
                    messages: out.messages(),
                    drops: out.drops(),
                    duplicates: out.duplicates(),
                    crash_losses: out.crash_losses(),
                    control_bytes: control,
                    control_ratio_vs_faultfree: if base_control == 0 {
                        1.0
                    } else {
                        control as f64 / base_control as f64
                    },
                    virtual_ratio_vs_faultfree: nanos as f64 / base_nanos as f64,
                });
            }
        }
    }
    rows
}

/// One row of the op-log-vs-sequencer comparison (experiment E10): the
/// same race-free workload under both write-ordering protocols on one
/// (topology, delivery mode, fault family) cell, with the op-log's
/// control bytes and virtual completion time relative to the sequencer's.
/// Both protocols buy the same settled criterion (sequential consistency
/// at settle points — see [`ProtocolKind::settled_criterion`]), so the
/// ratios measure what sharding the write order and replicating partially
/// save over the classical centralized sequencer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OpLogComparisonRow {
    /// Topology family label.
    pub topology: String,
    /// Delivery-mode label.
    pub delivery: String,
    /// Fault-family label.
    pub fault: String,
    /// Op-log messages on the wire.
    pub oplog_messages: u64,
    /// Sequencer messages on the wire.
    pub sequencer_messages: u64,
    /// Op-log control bytes (catch-up traffic included).
    pub oplog_control_bytes: u64,
    /// Sequencer control bytes (catch-up traffic included).
    pub sequencer_control_bytes: u64,
    /// Op-log control bytes divided by the sequencer's on the same cell.
    pub control_ratio_vs_sequencer: f64,
    /// Op-log virtual nanoseconds until quiescence.
    pub oplog_virtual_nanos: u64,
    /// Sequencer virtual nanoseconds until quiescence.
    pub sequencer_virtual_nanos: u64,
    /// Op-log virtual completion time divided by the sequencer's.
    pub virtual_ratio_vs_sequencer: f64,
}

/// Run a race-free (producer/consumer) workload under the op-log and the
/// sequencer on every (topology, delivery mode, fault family) cell:
/// mesh/star/grid × the classical unicast wire and the full efficiency
/// stack × every standard fault family. The script is identical for both
/// protocols in every cell, so the ratios isolate the protocol choice:
/// how much wire and time the per-shard flat-combining log saves over
/// routing every write through one global sequencer. This is the E10
/// table.
pub fn op_log_vs_sequencer_sweep(
    n: usize,
    ops_per_process: usize,
    seed: u64,
) -> Vec<OpLogComparisonRow> {
    let dist = Distribution::random(n, 2 * n, 2, seed);
    let ops = generate_family_ops(
        &dist,
        &WorkloadFamily::ProducerConsumer,
        ops_per_process,
        SettlePolicy::Every(6),
        seed,
    );
    let deliveries = [DeliveryMode::UNICAST, DeliveryMode::MULTICAST_BATCHED_DELTA];
    let mut rows = Vec::new();
    for family in [
        TopologyFamily::FullMesh,
        TopologyFamily::Star,
        TopologyFamily::Grid,
    ] {
        for delivery in deliveries {
            for fault in standard_faults() {
                let run = |kind: ProtocolKind| {
                    let config = SimConfig {
                        seed,
                        topology: match &family {
                            TopologyFamily::FullMesh => None,
                            f => Some(f.build(n)),
                        },
                        delivery,
                        faults: fault.fault_plan(seed),
                        ..SimConfig::default()
                    };
                    let crash = fault.crash_schedule(&ops, n);
                    run_script_faulted(kind, &dist, &ops, config, false, crash)
                };
                let oplog = run(ProtocolKind::OpLog);
                let seq = run(ProtocolKind::Sequential);
                let seq_control = seq.control_bytes().max(1);
                let seq_nanos = seq.virtual_time.as_nanos().max(1);
                rows.push(OpLogComparisonRow {
                    topology: family.label().to_string(),
                    delivery: delivery.label().to_string(),
                    fault: fault.label().to_string(),
                    oplog_messages: oplog.messages(),
                    sequencer_messages: seq.messages(),
                    oplog_control_bytes: oplog.control_bytes(),
                    sequencer_control_bytes: seq.control_bytes(),
                    control_ratio_vs_sequencer: oplog.control_bytes() as f64 / seq_control as f64,
                    oplog_virtual_nanos: oplog.virtual_time.as_nanos(),
                    sequencer_virtual_nanos: seq.virtual_time.as_nanos(),
                    virtual_ratio_vs_sequencer: oplog.virtual_time.as_nanos() as f64
                        / seq_nanos as f64,
                });
            }
        }
    }
    rows
}

/// The delivery modes the large tier and the scaling sweep run: the full
/// wire-efficiency stack with and without delta clock encoding. At scale
/// the unswept modes add nothing — the baseline matrix already pins them
/// at small `n`, and the large tier's question is how the best wire
/// formats grow.
pub const LARGE_TIER_DELIVERIES: [DeliveryMode; 2] = [
    DeliveryMode::MULTICAST_BATCHED,
    DeliveryMode::MULTICAST_BATCHED_DELTA,
];

/// The `large` scenario tier: the standard distribution families at
/// `n = 64..1024` processes, under the two full wire-efficiency stacks
/// ([`LARGE_TIER_DELIVERIES`]), on the direct mesh with a single settle
/// at the end. 24 rows per `n` (3 distributions × 2 modes × 4 protocols).
///
/// Full-history consistency checking is super-linear in the history, so
/// the large tier swaps the exhaustive checker for the polynomial spot
/// checkers ([`histories::pram_spot_check`], [`histories::causal_spot_check`]):
/// every run still records its history and every row is oracle-checked —
/// a row only exists if its history passed the spot check for the
/// protocol's consistency criterion. Panics on a violation (the sweep is
/// an acceptance gate, not a probe).
///
/// Cells execute on the scoped-thread fan-out like [`scenario_matrix`];
/// rows are in sweep order and bit-identical to a sequential run.
pub fn scenario_matrix_large(
    n: usize,
    ops_per_process: usize,
    seed: u64,
) -> Vec<ScenarioMatrixRow> {
    let mut cells = Vec::new();
    for family in standard_distributions() {
        let dist = family.build(n, 2 * n, seed);
        let ops = std::sync::Arc::new(generate_family_ops(
            &dist,
            &WorkloadFamily::Uniform { write_ratio: 0.5 },
            ops_per_process,
            SettlePolicy::AtEnd,
            seed,
        ));
        for delivery in LARGE_TIER_DELIVERIES {
            let config = SimConfig {
                seed,
                delivery,
                ..SimConfig::default()
            };
            for kind in ProtocolKind::ALL {
                cells.push(MatrixCell {
                    kind,
                    distribution: family.label(),
                    workload: "uniform".to_string(),
                    latency: "default".to_string(),
                    topology: "mesh".to_string(),
                    delivery: delivery.label().to_string(),
                    fault: "none".to_string(),
                    dist: dist.clone(),
                    ops: std::sync::Arc::clone(&ops),
                    config: config.clone(),
                    crash: None,
                });
            }
        }
    }
    let sweep_workers = effective_sweep_workers(cells.len());
    parallel_map(cells, |cell| {
        let out = run_script(cell.kind, &cell.dist, &cell.ops, cell.config, true);
        match cell.kind {
            ProtocolKind::CausalFull | ProtocolKind::CausalPartial => {
                if let Err(v) = causal_spot_check(&out.history) {
                    panic!(
                        "large-tier causal spot check failed: {}/{}/{}/{n}: {v:?}",
                        cell.kind.name(),
                        cell.distribution,
                        cell.delivery
                    );
                }
            }
            ProtocolKind::PramPartial | ProtocolKind::Sequential | ProtocolKind::OpLog => {
                if let Err(v) = pram_spot_check(&out.history) {
                    panic!(
                        "large-tier PRAM spot check failed: {}/{}/{}/{n}: {v:?}",
                        cell.kind.name(),
                        cell.distribution,
                        cell.delivery
                    );
                }
            }
        }
        ScenarioMatrixRow {
            protocol: cell.kind.name().to_string(),
            distribution: cell.distribution,
            workload: cell.workload,
            latency: cell.latency,
            topology: cell.topology,
            delivery: cell.delivery,
            fault: cell.fault,
            processes: n,
            messages: out.messages(),
            data_bytes: out.data_bytes(),
            control_bytes: out.control_bytes(),
            control_bytes_per_op: out.control_bytes_per_op(),
            forwarded: out.forwarded,
            drops: out.drops(),
            duplicates: out.duplicates(),
            virtual_nanos: out.virtual_time.as_nanos(),
            pool_hits: out.pool.hits,
            pool_misses: out.pool.misses,
            sweep_workers,
        }
    })
}

/// One row of the scaling sweep (experiment E8): one protocol, one wire
/// format, at one system size, with throughput (simulator events per
/// wall-clock second) and wire cost (control bytes per operation). The
/// wall-clock fields are the only non-deterministic numbers in this crate
/// — they are reported, never recorded in the baseline or asserted on.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Protocol measured.
    pub protocol: ProtocolKind,
    /// Delivery-mode label.
    pub delivery: String,
    /// Number of processes.
    pub processes: usize,
    /// Application operations issued.
    pub operations: u64,
    /// Messages sent.
    pub messages: u64,
    /// Control bytes sent.
    pub control_bytes: u64,
    /// Control bytes per application operation.
    pub control_bytes_per_op: f64,
    /// Simulator events (deliveries + timers) processed.
    pub events: u64,
    /// Wall-clock nanoseconds for the whole run (host-dependent).
    pub wall_nanos: u64,
}

impl ScalingRow {
    /// Simulator events processed per wall-clock second (host-dependent).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.events as f64 * 1e9 / self.wall_nanos as f64
        }
    }
}

/// The E8 scaling sweep: every protocol under the two large-tier wire
/// formats at each system size in `ns`, on the random(2) distribution
/// with a bulk-phase workload (all writes in flight, one settle at the
/// end — the regime where batching and delta encoding amortize, and
/// where the arena wire path is hot). Cells run sequentially so the
/// wall-clock column measures an uncontended host.
///
/// Everything except `wall_nanos` is deterministic; the growth assertion
/// that matters (causal-partial control bytes per op growing strictly
/// slower than causal-full) is pinned by a tier-1 test on the
/// `multicast-batched` rows.
pub fn scaling_sweep(ns: &[usize], ops_per_process: usize, seed: u64) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for &n in ns {
        let dist = Distribution::random(n, 2 * n, 2, seed);
        let ops = generate_family_ops(
            &dist,
            &WorkloadFamily::Uniform { write_ratio: 0.5 },
            ops_per_process,
            SettlePolicy::AtEnd,
            seed,
        );
        for delivery in LARGE_TIER_DELIVERIES {
            let config = SimConfig {
                seed,
                delivery,
                ..SimConfig::default()
            };
            for kind in ProtocolKind::ALL {
                let start = std::time::Instant::now();
                let out = run_script(kind, &dist, &ops, config.clone(), false);
                let wall_nanos = start.elapsed().as_nanos() as u64;
                rows.push(ScalingRow {
                    protocol: kind,
                    delivery: delivery.label().to_string(),
                    processes: n,
                    operations: out.operations,
                    messages: out.messages(),
                    control_bytes: out.control_bytes(),
                    control_bytes_per_op: out.control_bytes_per_op(),
                    events: out.events,
                    wall_nanos,
                });
            }
        }
    }
    rows
}

/// One row of the threaded-backend throughput table (experiment E9): one
/// protocol at one system size, each process on its own OS thread in
/// free-running mode, with the simnet run of the same script alongside.
/// The threaded columns answer "what do real cores buy" (application
/// operations per wall-clock second); the simnet columns restate the
/// deterministic engine's cost in its own work unit (events per second).
/// Like E8, every wall-clock field is host-dependent: reported, never
/// recorded in the baseline or asserted on.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ThreadedThroughputRow {
    /// Protocol measured.
    pub protocol: ProtocolKind,
    /// Number of processes = number of worker OS threads.
    pub threads: usize,
    /// Application operations issued (identical for both backends).
    pub operations: u64,
    /// Wall-clock nanoseconds of the threaded free-running run.
    pub wall_nanos: u64,
    /// Simulator events the simnet run of the same script processed.
    pub simnet_events: u64,
    /// Wall-clock nanoseconds of the simnet run.
    pub simnet_wall_nanos: u64,
    /// Ring-full stalls across all workers (the fabric's backpressure
    /// counter; host-dependent like every free-running fabric number).
    pub full_stalls: u64,
    /// Mailbox drains that moved at least one message.
    pub batches: u64,
    /// Total messages moved by those drains.
    pub batched_messages: u64,
}

impl ThreadedThroughputRow {
    /// Application operations per wall-clock second on the threaded
    /// backend (host-dependent).
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.operations as f64 * 1e9 / self.wall_nanos as f64
        }
    }

    /// Application operations per wall-clock second on simnet
    /// (host-dependent).
    pub fn simnet_ops_per_sec(&self) -> f64 {
        if self.simnet_wall_nanos == 0 {
            0.0
        } else {
            self.operations as f64 * 1e9 / self.simnet_wall_nanos as f64
        }
    }

    /// Simulator events per wall-clock second of the simnet run
    /// (host-dependent) — comparable to the E8 throughput column.
    pub fn simnet_events_per_sec(&self) -> f64 {
        if self.simnet_wall_nanos == 0 {
            0.0
        } else {
            self.simnet_events as f64 * 1e9 / self.simnet_wall_nanos as f64
        }
    }

    /// Wall-clock nanoseconds per application operation on the threaded
    /// backend (host-dependent) — the latency view of [`Self::ops_per_sec`].
    pub fn ns_per_op(&self) -> f64 {
        if self.operations == 0 {
            0.0
        } else {
            self.wall_nanos as f64 / self.operations as f64
        }
    }

    /// Mean messages moved per mailbox drain — how much the flat-combining
    /// drain amortizes wakeups (1.0 means every message paid its own).
    pub fn mean_batch_len(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_messages as f64 / self.batches as f64
        }
    }
}

/// The E9 threaded-throughput sweep: every protocol at each thread count
/// in `thread_counts` (one process per OS thread), running a bulk-phase
/// uniform workload free-running — writes race across real cores and a
/// quiescence barrier at the end settles the run — with the simnet run of
/// the identical script timed alongside as the deterministic reference
/// (backend equivalence itself is pinned by the differential tests; here
/// only the issued-operation counts are cross-checked). Cells run
/// sequentially so the wall-clock columns measure an uncontended host.
pub fn threaded_throughput_sweep(
    thread_counts: &[usize],
    ops_per_process: usize,
    seed: u64,
) -> Vec<ThreadedThroughputRow> {
    let mut rows = Vec::new();
    for &n in thread_counts {
        let dist = Distribution::random(n, 2 * n, 2.min(n), seed);
        let ops = generate_family_ops(
            &dist,
            &WorkloadFamily::ProducerConsumer,
            ops_per_process,
            SettlePolicy::AtEnd,
            seed,
        );
        for kind in ProtocolKind::ALL {
            let sim_start = std::time::Instant::now();
            let sim = run_script(kind, &dist, &ops, SimConfig::default(), false);
            let simnet_wall_nanos = sim_start.elapsed().as_nanos() as u64;
            let thr_start = std::time::Instant::now();
            let thr = run_script_backend(
                kind,
                &dist,
                &ops,
                SimConfig::default(),
                false,
                ExecBackend::Threaded(ThreadedMode::FreeRunning),
            );
            let wall_nanos = thr_start.elapsed().as_nanos() as u64;
            assert_eq!(
                sim.operations, thr.operations,
                "{kind}/{n}: backends disagree on issued operations"
            );
            rows.push(ThreadedThroughputRow {
                protocol: kind,
                threads: n,
                operations: thr.operations,
                wall_nanos,
                simnet_events: sim.events,
                simnet_wall_nanos,
                full_stalls: thr.fabric.full_stalls,
                batches: thr.fabric.batches,
                batched_messages: thr.fabric.batched_messages,
            });
        }
    }
    rows
}

/// The coordinates of the checked-in `BENCH_threaded.json`: thread
/// counts, ops per process, seed. Shared by the `baseline` binary's
/// `--threaded` write and check modes. Small on purpose — the gate is a
/// smoke-level floor, not a tuning benchmark.
pub const THREADED_BASELINE_COORDS: ([usize; 2], usize, u64) = ([2, 8], 24, 7);

/// One row of the checked-in `BENCH_threaded.json`: a threaded-backend
/// throughput floor. Unlike the control-byte baseline, the measured
/// column here is wall-clock, so the gate is deliberately loose: it
/// fails only when throughput drops below a generous fraction of the
/// recorded number (or when the deterministic operation count changes) —
/// catching "the threaded backend got 10× slower or stopped doing the
/// same work", not single-digit noise.
#[derive(Clone, Debug)]
pub struct ThreadedBaselineRow {
    /// Protocol name.
    pub protocol: String,
    /// Worker-thread (= process) count.
    pub threads: usize,
    /// Application operations issued (deterministic, compared exactly).
    pub operations: u64,
    /// Threaded ops per wall-clock second when the baseline was recorded
    /// (host-dependent; compared against a floor, never exactly).
    pub ops_per_sec: f64,
    /// Mean mailbox-drain batch length when recorded (informational).
    pub mean_batch_len: f64,
}

impl ThreadedBaselineRow {
    /// The cell coordinate (identity, not measurement).
    pub fn coordinate(&self) -> String {
        format!("{}/{}", self.protocol, self.threads)
    }

    /// Hand-rolled JSON encoding, mirroring [`ScenarioMatrixRow::to_json`].
    pub fn to_json(&self) -> String {
        format!(
            "{{\"protocol\":\"{}\",\"threads\":{},\"operations\":{},\
             \"ops_per_sec\":{:.0},\"mean_batch_len\":{:.3}}}",
            self.protocol, self.threads, self.operations, self.ops_per_sec, self.mean_batch_len
        )
    }

    /// Parse a row back out of [`Self::to_json`]'s encoding.
    pub fn from_json(line: &str) -> Option<ThreadedBaselineRow> {
        fn str_field(line: &str, key: &str) -> Option<String> {
            let tag = format!("\"{key}\":\"");
            let start = line.find(&tag)? + tag.len();
            let end = line[start..].find('"')? + start;
            Some(line[start..end].to_string())
        }
        fn num_field(line: &str, key: &str) -> Option<String> {
            let tag = format!("\"{key}\":");
            let start = line.find(&tag)? + tag.len();
            let end = line[start..]
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
                .map(|i| i + start)
                .unwrap_or(line.len());
            Some(line[start..end].to_string())
        }
        Some(ThreadedBaselineRow {
            protocol: str_field(line, "protocol")?,
            threads: num_field(line, "threads")?.parse().ok()?,
            operations: num_field(line, "operations")?.parse().ok()?,
            ops_per_sec: num_field(line, "ops_per_sec")?.parse().ok()?,
            mean_batch_len: num_field(line, "mean_batch_len")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.0),
        })
    }
}

/// Run the threaded-baseline sweep at [`THREADED_BASELINE_COORDS`].
pub fn threaded_baseline_sweep() -> Vec<ThreadedBaselineRow> {
    let (threads, ops, seed) = THREADED_BASELINE_COORDS;
    threaded_throughput_sweep(&threads, ops, seed)
        .into_iter()
        .map(|row| ThreadedBaselineRow {
            protocol: row.protocol.name().to_string(),
            threads: row.threads,
            operations: row.operations,
            ops_per_sec: row.ops_per_sec(),
            mean_batch_len: row.mean_batch_len(),
        })
        .collect()
}

/// Compare a fresh threaded sweep against the checked-in baseline.
/// `floor` is the fraction of the recorded throughput the current run
/// must reach (0.5 = may be up to 2× slower; CI uses a lenient floor to
/// absorb shared-runner noise). Operation counts are deterministic and
/// compared exactly; vanished cells are findings like in
/// [`compare_to_baseline`]. Returns human-readable findings, empty on OK.
pub fn compare_threaded_baseline(
    baseline: &[ThreadedBaselineRow],
    current: &[ThreadedBaselineRow],
    floor: f64,
) -> Vec<String> {
    let mut findings = Vec::new();
    for base in baseline {
        let coordinate = base.coordinate();
        match current.iter().find(|c| c.coordinate() == coordinate) {
            None => findings.push(format!(
                "{coordinate}: cell missing from the current sweep (shape changed — \
                 regenerate deliberately)"
            )),
            Some(cur) => {
                if cur.operations != base.operations {
                    findings.push(format!(
                        "{coordinate}: operation count changed ({} recorded, {} now) — \
                         the workload script is no longer the same",
                        base.operations, cur.operations
                    ));
                }
                if cur.ops_per_sec < base.ops_per_sec * floor {
                    findings.push(format!(
                        "{coordinate}: throughput regression ({:.0} ops/s recorded, \
                         {:.0} now, floor {:.0}%)",
                        base.ops_per_sec,
                        cur.ops_per_sec,
                        floor * 100.0
                    ));
                }
            }
        }
    }
    findings
}

/// The coordinates of [`scenario_matrix`] used for the checked-in
/// `BENCH_baseline.json`: process count, ops per process, seed. Shared by
/// the `baseline` binary's write and check modes so they always compare
/// like with like.
pub const BASELINE_COORDS: (usize, usize, u64) = (8, 6, 11);

/// The large-tier coordinates recorded in `BENCH_baseline.json` alongside
/// the standard matrix: (process count, ops per process) pairs at the
/// shared baseline seed. `n = 1024` stays out of the baseline — the
/// `efficiency` binary's E8 table covers it — so `baseline --check`
/// remains a sub-minute CI gate.
pub const BASELINE_LARGE_TIERS: [(usize, usize); 2] = [(64, 2), (256, 2)];

/// One control-byte regression found by [`compare_to_baseline`].
#[derive(Clone, Debug, PartialEq)]
pub enum BaselineDiff {
    /// The cell's control bytes grew beyond the tolerance.
    Regression {
        /// The cell coordinate ([`ScenarioMatrixRow::coordinate`]).
        coordinate: String,
        /// Control bytes recorded in the baseline.
        baseline: u64,
        /// Control bytes measured now.
        current: u64,
    },
    /// A baseline cell is missing from the current sweep (the matrix
    /// shape changed — regenerate the baseline deliberately).
    Missing {
        /// The vanished coordinate.
        coordinate: String,
    },
    /// A current cell has no baseline entry (new sweep dimension —
    /// regenerate the baseline deliberately).
    New {
        /// The unexpected coordinate.
        coordinate: String,
    },
}

impl std::fmt::Display for BaselineDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineDiff::Regression {
                coordinate,
                baseline,
                current,
            } => write!(
                f,
                "REGRESSION {coordinate}: control bytes {baseline} -> {current} (+{:.1}%)",
                (*current as f64 / *baseline as f64 - 1.0) * 100.0
            ),
            BaselineDiff::Missing { coordinate } => {
                write!(f, "MISSING {coordinate}: cell not produced any more")
            }
            BaselineDiff::New { coordinate } => {
                write!(f, "NEW {coordinate}: cell has no baseline entry")
            }
        }
    }
}

/// Compare a sweep against a recorded baseline. A cell regresses when its
/// control bytes exceed the baseline by more than `tolerance` (relative,
/// e.g. `0.02` = 2%); improvements never fail. Shape changes (missing or
/// new coordinates) are also reported, so a deliberately regenerated
/// baseline is the only way to change the matrix silently.
pub fn compare_to_baseline(
    baseline: &[ScenarioMatrixRow],
    current: &[ScenarioMatrixRow],
    tolerance: f64,
) -> Vec<BaselineDiff> {
    use std::collections::BTreeMap;
    let current_by: BTreeMap<String, &ScenarioMatrixRow> =
        current.iter().map(|r| (r.coordinate(), r)).collect();
    let baseline_by: BTreeMap<String, &ScenarioMatrixRow> =
        baseline.iter().map(|r| (r.coordinate(), r)).collect();
    let mut diffs = Vec::new();
    for (coordinate, base) in &baseline_by {
        match current_by.get(coordinate) {
            None => diffs.push(BaselineDiff::Missing {
                coordinate: coordinate.clone(),
            }),
            Some(cur) => {
                let limit = base.control_bytes as f64 * (1.0 + tolerance);
                if cur.control_bytes as f64 > limit {
                    diffs.push(BaselineDiff::Regression {
                        coordinate: coordinate.clone(),
                        baseline: base.control_bytes,
                        current: cur.control_bytes,
                    });
                }
            }
        }
    }
    for coordinate in current_by.keys() {
        if !baseline_by.contains_key(coordinate) {
            diffs.push(BaselineDiff::New {
                coordinate: coordinate.clone(),
            });
        }
    }
    diffs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_sweep_orders_protocols_as_the_paper_predicts() {
        let dist = Distribution::random(8, 12, 2, 1);
        let rows = efficiency_sweep_point(&dist, 8, 5);
        assert_eq!(rows.len(), 5);
        let pram = &rows[0];
        let cpart = &rows[1];
        let cfull = &rows[2];
        let oplog = &rows[4];
        assert_eq!(pram.protocol, ProtocolKind::PramPartial);
        assert_eq!(cpart.protocol, ProtocolKind::CausalPartial);
        assert_eq!(cfull.protocol, ProtocolKind::CausalFull);
        assert_eq!(oplog.protocol, ProtocolKind::OpLog);
        assert!(pram.control_bytes < cpart.control_bytes);
        assert!(pram.control_bytes < cfull.control_bytes);
        // PRAM metadata never reaches more nodes than the replica set.
        assert!(pram.max_relevant_nodes <= 3);
        // The op-log's append/echo/entry traffic stays between the shard
        // owner and the replicas — both inside C(x) — so its metadata
        // footprint matches PRAM's, not the sequencer's.
        assert!(oplog.max_relevant_nodes <= 3);
        // Causal partial metadata reaches every node for some variable.
        assert_eq!(cpart.max_relevant_nodes, 8);
    }

    #[test]
    fn bellman_ford_point_is_correct_for_all_protocols() {
        for row in bellman_ford_point(8, 3) {
            assert!(row.correct, "{:?}", row.protocol);
            assert!(row.messages > 0);
        }
    }

    #[test]
    fn relevance_fractions_by_family() {
        let families = distribution_families(8, 2);
        assert_eq!(families.len(), 5);
        let lookup = |name: &str| {
            families
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, d)| relevance_fraction(d, 8))
                .unwrap()
        };
        assert_eq!(lookup("full"), 1.0);
        assert!(lookup("disjoint-blocks") < 0.2);
        // Ring overlap creates hoops around the ring, making most processes
        // relevant despite a replication factor of 2.
        assert!(lookup("ring-overlap") > lookup("disjoint-blocks"));
    }

    #[test]
    fn scenario_matrix_covers_the_full_sweep() {
        let rows = scenario_matrix(6, 4, 3);
        // Mesh sweeps every latency (baseline delivery) plus every
        // non-default delivery mode (default latency); each sparse
        // topology runs all delivery modes under the default model only;
        // fault families ride the default latency + default wire format
        // on every topology (matching the scenario tour).
        let cells = standard_distributions().len() * standard_workloads().len();
        let per_mesh_cell = standard_latencies().len()
            + (standard_deliveries().len() - 1)
            + (standard_faults().len() - 1);
        let per_sparse_cell = standard_deliveries().len() + (standard_faults().len() - 1);
        let expected = (cells * per_mesh_cell
            + cells * (standard_topologies().len() - 1) * per_sparse_cell)
            * ProtocolKind::ALL.len();
        assert_eq!(rows.len(), expected);
        assert_eq!(expected, 2280);
        // The fault-free subset is the PR-4 sweep grown by the two delta
        // wire modes and the op-log protocol: 1560 rows.
        assert_eq!(rows.iter().filter(|r| r.fault == "none").count(), 1560);
        assert!(rows.iter().all(|r| r.messages > 0 || r.control_bytes == 0));
        // Within every (distribution, workload, latency, topology,
        // delivery) cell, PRAM partial never spends more control bytes
        // than causal partial — on sparse routed topologies and under
        // every delivery mode too.
        for chunk in rows.chunks(5) {
            let pram = chunk
                .iter()
                .find(|r| r.protocol == ProtocolKind::PramPartial.name())
                .unwrap();
            let cpart = chunk
                .iter()
                .find(|r| r.protocol == ProtocolKind::CausalPartial.name())
                .unwrap();
            assert!(
                pram.control_bytes <= cpart.control_bytes,
                "{}/{}/{}/{}/{}",
                pram.distribution,
                pram.workload,
                pram.latency,
                pram.topology,
                pram.delivery
            );
        }
        // Sparse topologies relay: some cell somewhere forwarded traffic,
        // and mesh cells never do.
        assert!(rows.iter().any(|r| r.topology != "mesh" && r.forwarded > 0));
        assert!(rows
            .iter()
            .all(|r| r.topology != "mesh" || r.forwarded == 0));
        // Fault rows genuinely injected faults somewhere…
        assert!(rows.iter().any(|r| r.fault == "lossy" && r.drops > 0));
        assert!(rows
            .iter()
            .any(|r| r.fault == "duplicating" && r.duplicates > 0));
        // …and fault-free rows never pay for them.
        assert!(rows
            .iter()
            .all(|r| r.fault != "none" || (r.drops == 0 && r.duplicates == 0)));
        // Rows serialize to JSON object lines.
        let json = rows[0].to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"control_bytes\""));
        assert!(json.contains("\"topology\""));
        assert!(json.contains("\"fault\""));
    }

    /// Satellite determinism pin: the same fault seeds yield bit-identical
    /// sweep JSON across two runs, under the parallel sweep fan-out.
    #[test]
    fn fault_sweep_json_is_bit_identical_across_runs() {
        let encode = |rows: Vec<ScenarioMatrixRow>| -> Vec<String> {
            rows.into_iter().map(|r| r.to_json()).collect()
        };
        let a = encode(scenario_matrix(5, 3, 9));
        let b = encode(scenario_matrix(5, 3, 9));
        assert_eq!(a, b);
        // A different seed changes the fault schedule somewhere.
        let c = encode(scenario_matrix(5, 3, 10));
        assert_ne!(a, c);
    }

    #[test]
    fn fault_tolerance_sweep_quantifies_recovery_overhead() {
        let rows = fault_tolerance_sweep(8, 6, 3);
        // Mesh, star, grid × four fault families × five protocols.
        assert_eq!(
            rows.len(),
            3 * standard_faults().len() * ProtocolKind::ALL.len()
        );
        let cell = |topo: &str, fault: &str, kind: ProtocolKind| {
            rows.iter()
                .find(|r| r.topology == topo && r.fault == fault && r.protocol == kind)
                .unwrap()
        };
        for topo in ["mesh", "star", "grid"] {
            for kind in ProtocolKind::ALL {
                // The fault-free row is its own reference and is clean.
                let base = cell(topo, "none", kind);
                assert!((base.control_ratio_vs_faultfree - 1.0).abs() < 1e-12);
                assert_eq!(base.drops + base.duplicates + base.crash_losses, 0);
                // Drops force retransmissions: more control bytes and more
                // virtual time, never less.
                let lossy = cell(topo, "lossy", kind);
                assert!(lossy.drops > 0, "{topo}/{kind}");
                assert!(lossy.control_ratio_vs_faultfree >= 1.0);
                assert!(lossy.virtual_ratio_vs_faultfree >= 1.0);
                // Duplicates pay wire bytes without touching delivery.
                let dup = cell(topo, "duplicating", kind);
                assert!(dup.duplicates > 0, "{topo}/{kind}");
                assert!(dup.control_ratio_vs_faultfree >= 1.0);
                // The crash window lost deliveries that recovery had to
                // re-fetch.
                let crash = cell(topo, "crash-restart", kind);
                assert!(crash.crash_losses > 0, "{topo}/{kind}");
            }
        }
    }

    /// E10: the op-log beats the centralized sequencer on control bytes
    /// in every (topology, delivery, fault) cell — partial replication
    /// keeps its entries inside each variable's replica set while the
    /// sequencer broadcasts every ordered write to all nodes.
    #[test]
    fn op_log_vs_sequencer_sweep_shows_partial_replication_winning() {
        let rows = op_log_vs_sequencer_sweep(8, 6, 3);
        // Mesh, star, grid × two wire formats × four fault families.
        assert_eq!(rows.len(), 3 * 2 * standard_faults().len());
        let coords: std::collections::BTreeSet<(String, String, String)> = rows
            .iter()
            .map(|r| (r.topology.clone(), r.delivery.clone(), r.fault.clone()))
            .collect();
        assert_eq!(coords.len(), rows.len());
        for row in &rows {
            assert!(row.oplog_messages > 0 && row.sequencer_messages > 0);
            assert!(row.oplog_virtual_nanos > 0 && row.sequencer_virtual_nanos > 0);
            assert!(
                row.oplog_control_bytes < row.sequencer_control_bytes,
                "{}/{}/{}: op-log {} >= sequencer {}",
                row.topology,
                row.delivery,
                row.fault,
                row.oplog_control_bytes,
                row.sequencer_control_bytes
            );
            assert!(row.control_ratio_vs_sequencer < 1.0);
            assert!(row.virtual_ratio_vs_sequencer > 0.0);
        }
    }

    #[test]
    fn routed_vs_mesh_sweep_quantifies_relay_overhead() {
        let rows = routed_vs_mesh_sweep(8, 6, 3);
        assert_eq!(
            rows.len(),
            standard_topologies().len() * ProtocolKind::ALL.len()
        );
        for row in &rows {
            if row.topology == "mesh" {
                assert_eq!(row.forwarded, 0);
                assert!((row.control_ratio_vs_mesh - 1.0).abs() < 1e-12);
            } else {
                // Relaying can only add wire traffic, never remove it.
                assert!(
                    row.control_ratio_vs_mesh >= 1.0,
                    "{}/{}",
                    row.topology,
                    row.protocol
                );
            }
        }
        // Somewhere the overlay genuinely forwarded transit traffic.
        assert!(rows.iter().any(|r| r.forwarded > 0));
        // The paper's ordering survives routing: PRAM partial stays the
        // cheapest protocol on every topology.
        for family in standard_topologies() {
            let on = |k: ProtocolKind| {
                rows.iter()
                    .find(|r| r.topology == family.label() && r.protocol == k)
                    .unwrap()
                    .control_bytes
            };
            assert!(on(ProtocolKind::PramPartial) < on(ProtocolKind::CausalPartial));
            assert!(on(ProtocolKind::PramPartial) < on(ProtocolKind::CausalFull));
        }
    }

    #[test]
    fn delivery_mode_sweep_quantifies_the_wire_savings() {
        let rows = delivery_mode_sweep(8, 6, 3);
        // Star and grid × six modes × five protocols.
        assert_eq!(
            rows.len(),
            2 * DeliveryMode::ALL.len() * ProtocolKind::ALL.len()
        );
        let cell = |topo: &str, mode: &str, kind: ProtocolKind| {
            rows.iter()
                .find(|r| r.topology == topo && r.delivery == mode && r.protocol == kind)
                .unwrap()
        };
        for topo in ["star", "grid"] {
            for kind in ProtocolKind::ALL {
                // The baseline mode is its own reference…
                let base = cell(topo, "unicast", kind);
                assert!((base.control_ratio_vs_unicast - 1.0).abs() < 1e-12);
                // …and no mode ever pays more than it: multicast sends a
                // subset of the unicast envelopes, batching delta-encodes
                // a subset of the unicast record bytes.
                for mode in [
                    "multicast",
                    "batched",
                    "multicast-batched",
                    "delta",
                    "multicast-batched-delta",
                ] {
                    let row = cell(topo, mode, kind);
                    assert!(
                        row.control_ratio_vs_unicast <= 1.0 + 1e-12,
                        "{topo}/{mode}/{kind}: ratio {}",
                        row.control_ratio_vs_unicast
                    );
                    assert!(row.messages <= base.messages);
                }
            }
            // The measured drops the wire layer exists for: tree
            // multicast cuts the broadcast-heavy protocols' control
            // bytes…
            for kind in [ProtocolKind::CausalFull, ProtocolKind::CausalPartial] {
                assert!(
                    cell(topo, "multicast", kind).control_ratio_vs_unicast < 1.0,
                    "{topo}: multicast must cut {kind}'s broadcast bytes"
                );
            }
            // …with one instructive exception: the sequencer broadcasts
            // only from node 0, which on the star *is* the hub — its
            // broadcast tree is flat (one private edge per leaf), so
            // there is nothing to deduplicate there. On the grid the
            // corner-seated sequencer shares tree edges like everyone
            // else.
            let seq = cell(topo, "multicast", ProtocolKind::Sequential);
            if topo == "star" {
                assert!((seq.control_ratio_vs_unicast - 1.0).abs() < 1e-12);
            } else {
                assert!(seq.control_ratio_vs_unicast < 1.0);
            }
            // …and batching cuts causal-partial's per-non-replica record
            // cost, independently and cumulatively.
            let batched = cell(topo, "batched", ProtocolKind::CausalPartial);
            assert!(batched.control_ratio_vs_unicast < 1.0);
            let both = cell(topo, "multicast-batched", ProtocolKind::CausalPartial);
            assert!(both.control_ratio_vs_unicast <= batched.control_ratio_vs_unicast);
            // Batching alone cannot touch protocols without control-only
            // records (the op-log's batching is structural — the
            // flat-combining lane — and independent of the wire mode).
            for kind in [
                ProtocolKind::PramPartial,
                ProtocolKind::CausalFull,
                ProtocolKind::Sequential,
                ProtocolKind::OpLog,
            ] {
                assert!(
                    (cell(topo, "batched", kind).control_ratio_vs_unicast - 1.0).abs() < 1e-12,
                    "{topo}: batching must not change {kind}"
                );
            }
            // Delta clock encoding cuts the vector-clock-carrying
            // protocols (each write's clock differs from the writer's
            // previous one in a handful of entries)…
            for kind in [ProtocolKind::CausalFull, ProtocolKind::CausalPartial] {
                assert!(
                    cell(topo, "delta", kind).control_ratio_vs_unicast < 1.0,
                    "{topo}: delta must cut {kind}'s clock bytes"
                );
            }
            // …stacks with multicast + batching…
            let all_three = cell(topo, "multicast-batched-delta", ProtocolKind::CausalPartial);
            assert!(all_three.control_ratio_vs_unicast <= both.control_ratio_vs_unicast);
            // …and is a no-op for the protocols whose wire metadata is
            // O(1) per message (sequence numbers, not clocks).
            for kind in [
                ProtocolKind::PramPartial,
                ProtocolKind::Sequential,
                ProtocolKind::OpLog,
            ] {
                assert!(
                    (cell(topo, "delta", kind).control_ratio_vs_unicast - 1.0).abs() < 1e-12,
                    "{topo}: delta must not change {kind}"
                );
            }
        }
    }

    /// The large tier at a small-but-nontrivial size: full row set, every
    /// row oracle-checked (the sweep panics on a spot-check violation),
    /// and the delta wire never dearer than the dense one.
    #[test]
    fn scenario_matrix_large_is_oracle_checked_and_delta_never_dearer() {
        let n = 24;
        let rows = scenario_matrix_large(n, 2, 7);
        assert_eq!(
            rows.len(),
            standard_distributions().len() * LARGE_TIER_DELIVERIES.len() * ProtocolKind::ALL.len()
        );
        assert!(rows.iter().all(|r| r.processes == n));
        assert!(rows
            .iter()
            .all(|r| r.topology == "mesh" && r.fault == "none"));
        // Coordinates are unique and disjoint from the standard matrix
        // (different process count), so the baseline can hold both.
        let coords: std::collections::BTreeSet<String> =
            rows.iter().map(|r| r.coordinate()).collect();
        assert_eq!(coords.len(), rows.len());
        // Delta encoding only ever removes clock bytes from the wire.
        for row in rows.iter().filter(|r| r.delivery == "multicast-batched") {
            let delta = rows
                .iter()
                .find(|r| {
                    r.protocol == row.protocol
                        && r.distribution == row.distribution
                        && r.delivery == "multicast-batched-delta"
                })
                .unwrap();
            assert!(
                delta.control_bytes <= row.control_bytes,
                "{}/{}: delta {} > dense {}",
                row.protocol,
                row.distribution,
                delta.control_bytes,
                row.control_bytes
            );
        }
    }

    /// The E8 headline, pinned at 64 → 256 (the binary extends it to
    /// 1024): causal-partial's control bytes per op grow strictly slower
    /// than causal-full's under the batched wire, because batching
    /// amortizes the full vector clock over the records that accumulate
    /// per destination while causal-full pays a dense clock on every
    /// envelope. Asserted on the non-delta rows — delta encoding collapses
    /// both protocols' clock bytes to near-O(1) per record, which is the
    /// point of the delta rows but erases the growth gap this test pins.
    #[test]
    fn scaling_sweep_growth_orders_the_causal_protocols() {
        let rows = scaling_sweep(&[64, 256], 8, 11);
        assert_eq!(
            rows.len(),
            2 * LARGE_TIER_DELIVERIES.len() * ProtocolKind::ALL.len()
        );
        let cell = |n: usize, mode: &str, kind: ProtocolKind| {
            rows.iter()
                .find(|r| r.processes == n && r.delivery == mode && r.protocol == kind)
                .unwrap()
        };
        let growth = |kind: ProtocolKind| {
            let small = cell(64, "multicast-batched", kind).control_bytes_per_op;
            let big = cell(256, "multicast-batched", kind).control_bytes_per_op;
            assert!(small > 0.0);
            big / small
        };
        assert!(
            growth(ProtocolKind::CausalPartial) < growth(ProtocolKind::CausalFull),
            "causal-partial must grow strictly slower than causal-full: {} vs {}",
            growth(ProtocolKind::CausalPartial),
            growth(ProtocolKind::CausalFull)
        );
        // Every cell did real work and the throughput inputs are sane.
        for row in &rows {
            assert!(row.operations > 0 && row.events > 0 && row.messages > 0);
            assert!(row.events_per_sec() >= 0.0);
        }
        // Delta rows never spend more wire than their dense counterparts.
        for n in [64, 256] {
            for kind in ProtocolKind::ALL {
                assert!(
                    cell(n, "multicast-batched-delta", kind).control_bytes
                        <= cell(n, "multicast-batched", kind).control_bytes,
                    "{n}/{kind}"
                );
            }
        }
    }

    #[test]
    fn matrix_rows_round_trip_through_json() {
        let rows = scenario_matrix(4, 2, 5);
        for row in &rows {
            let parsed = ScenarioMatrixRow::from_json(&row.to_json()).unwrap();
            assert_eq!(parsed.coordinate(), row.coordinate());
            assert_eq!(parsed.messages, row.messages);
            assert_eq!(parsed.data_bytes, row.data_bytes);
            assert_eq!(parsed.control_bytes, row.control_bytes);
            assert_eq!(parsed.forwarded, row.forwarded);
            assert_eq!(parsed.virtual_nanos, row.virtual_nanos);
            assert_eq!(parsed.pool_hits, row.pool_hits);
            assert_eq!(parsed.pool_misses, row.pool_misses);
            assert_eq!(parsed.sweep_workers, row.sweep_workers);
        }
        // Array framing (trailing comma, whitespace) is tolerated; other
        // lines are not rows.
        let line = format!("  {},", rows[0].to_json());
        assert!(ScenarioMatrixRow::from_json(&line).is_some());
        assert!(ScenarioMatrixRow::from_json("[").is_none());
        assert!(ScenarioMatrixRow::from_json("]").is_none());
        // Rows recorded before the pool/worker columns existed still
        // parse, with the new columns defaulting to zero — the checked-in
        // baseline stays valid without regeneration.
        let legacy = line
            .replace(&format!(",\"pool_hits\":{}", rows[0].pool_hits), "")
            .replace(&format!(",\"pool_misses\":{}", rows[0].pool_misses), "")
            .replace(&format!(",\"sweep_workers\":{}", rows[0].sweep_workers), "");
        let parsed = ScenarioMatrixRow::from_json(&legacy).unwrap();
        assert_eq!(parsed.coordinate(), rows[0].coordinate());
        assert_eq!(parsed.control_bytes, rows[0].control_bytes);
        assert_eq!(parsed.pool_hits, 0);
        assert_eq!(parsed.pool_misses, 0);
        assert_eq!(parsed.sweep_workers, 0);
    }

    /// The sweep rows carry the scheduler's pool accounting: after warmup
    /// the event path recycles buffers, so hits dominate somewhere, and
    /// every row records the fan-out width it ran under.
    #[test]
    fn matrix_rows_report_pool_and_worker_columns() {
        let rows = scenario_matrix(5, 3, 9);
        let workers = rows[0].sweep_workers;
        assert!(workers >= 1);
        assert!(rows.iter().all(|r| r.sweep_workers == workers));
        assert!(rows.iter().any(|r| r.pool_hits > 0));
        // Pool accounting is part of the deterministic row payload: two
        // identical sweeps agree column for column.
        let again = scenario_matrix(5, 3, 9);
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.pool_hits, b.pool_hits, "{}", a.coordinate());
            assert_eq!(a.pool_misses, b.pool_misses, "{}", a.coordinate());
        }
    }

    /// E9 smoke: the threaded sweep produces one row per (thread count,
    /// protocol), with sane deterministic columns; wall-clock columns are
    /// only required to be nonzero.
    #[test]
    fn threaded_throughput_sweep_covers_every_protocol() {
        let rows = threaded_throughput_sweep(&[2, 4], 3, 7);
        assert_eq!(rows.len(), 2 * ProtocolKind::ALL.len());
        for row in &rows {
            assert!(row.operations > 0, "{}/{}", row.protocol, row.threads);
            assert!(row.simnet_events > 0);
            assert!(row.wall_nanos > 0 && row.simnet_wall_nanos > 0);
            assert!(row.ops_per_sec() > 0.0);
            assert!(row.simnet_events_per_sec() > 0.0);
        }
    }

    #[test]
    fn baseline_comparison_flags_regressions_but_not_improvements() {
        let rows = scenario_matrix(4, 2, 5);
        // Identical sweeps: clean.
        assert!(compare_to_baseline(&rows, &rows, 0.02).is_empty());

        // A 10% control-byte increase on one cell fails at 2% tolerance…
        let mut worse = rows.clone();
        worse[0].control_bytes = (worse[0].control_bytes.max(10) as f64 * 1.10) as u64;
        let diffs = compare_to_baseline(&rows, &worse, 0.02);
        assert_eq!(diffs.len(), 1);
        assert!(matches!(diffs[0], BaselineDiff::Regression { .. }));
        assert!(diffs[0].to_string().contains("REGRESSION"));
        // …but passes at 20% tolerance.
        assert!(compare_to_baseline(&rows, &worse, 0.20).is_empty());

        // Improvements never fail.
        let mut better = rows.clone();
        for r in &mut better {
            r.control_bytes /= 2;
        }
        assert!(compare_to_baseline(&rows, &better, 0.0).is_empty());

        // Shape changes are loud in both directions.
        let shrunk = &rows[1..];
        let diffs = compare_to_baseline(&rows, shrunk, 0.02);
        assert_eq!(diffs.len(), 1);
        assert!(matches!(diffs[0], BaselineDiff::Missing { .. }));
        let diffs = compare_to_baseline(shrunk, &rows, 0.02);
        assert_eq!(diffs.len(), 1);
        assert!(matches!(diffs[0], BaselineDiff::New { .. }));
    }
}
