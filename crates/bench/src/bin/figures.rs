//! Regenerate every figure of the paper as text output.
//!
//! ```text
//! cargo run --release -p bench --bin figures            # all figures
//! cargo run --release -p bench --bin figures -- 4       # only Figure 4
//! ```

use apps::{
    bellman_ford_distribution, counter_var, distance_var, run_bellman_ford,
    shortest_paths_reference, Network,
};
use dsm::{DynDsm, ProtocolKind};
use histories::checker::check_all;
use histories::dependency::{has_dependency_chain, ChainOrder};
use histories::figures;
use histories::hoop::enumerate_hoops;
use histories::relevance::{relevant_processes, witness_history};
use histories::{check, Criterion, Distribution, History, ProcId, ReadFrom, ShareGraph, VarId};
use simnet::{SimConfig, Topology};

fn header(n: u32, title: &str) {
    println!("\n==================== Figure {n}: {title} ====================");
}

fn classify(h: &History) {
    for report in check_all(h) {
        println!(
            "  {:<18} {}",
            report.criterion.to_string(),
            if report.consistent {
                "consistent"
            } else {
                "violated"
            }
        );
    }
}

fn fig1() {
    header(1, "share graph");
    let d = figures::fig1_distribution();
    let sg = ShareGraph::new(&d);
    for (a, b, label) in sg.edges() {
        println!("  edge {a} -- {b}  label {label:?}");
    }
    for x in 0..2 {
        println!("  C(x{x}) = {:?}", sg.clique(VarId(x)));
    }
}

fn fig2() {
    header(2, "x-hoops");
    for k in 1..=4 {
        let d = figures::fig2_distribution(k);
        let sg = ShareGraph::new(&d);
        let hoops = enumerate_hoops(&sg, VarId(0), k + 4);
        println!(
            "  {k} intermediate(s): {} hoop(s); path {:?}",
            hoops.len(),
            hoops[0].path
        );
    }
}

fn fig3() {
    header(3, "x-dependency chain along a hoop");
    let hoop = figures::fig2_hoop(2);
    let h = witness_history(&hoop).unwrap();
    print!("{}", h.pretty());
    let rf = ReadFrom::infer(&h).unwrap();
    for order in [ChainOrder::Causal, ChainOrder::LazyCausal, ChainOrder::Pram] {
        println!(
            "  chain under {order:?}: {}",
            has_dependency_chain(&h, &rf, order, &hoop).is_some()
        );
    }
    println!(
        "  causally consistent: {}",
        check(&h, Criterion::Causal).consistent
    );
}

fn fig4() {
    header(4, "lazy causal but not causal");
    let h = figures::fig4_history();
    print!("{}", h.pretty());
    classify(&h);
}

fn fig5() {
    header(5, "not lazy causal");
    let h = figures::fig5_history();
    print!("{}", h.pretty());
    classify(&h);
    let d = figures::fig5_distribution();
    println!(
        "  x-relevant processes (Theorem 1): {:?}",
        relevant_processes(&d, VarId(0), 6)
    );
}

fn fig6() {
    header(6, "not lazy semi-causal");
    let h = figures::fig6_history();
    print!("{}", h.pretty());
    classify(&h);
}

fn fig7_8() {
    header(7, "distributed Bellman-Ford (pseudocode of Fig. 7)");
    header(8, "the example network");
    let net = Network::fig8();
    for (a, b, w) in net.edges() {
        println!("  link {} -> {}  cost {w}", a + 1, b + 1);
    }
    let dist = bellman_ford_distribution(&net);
    for p in 0..5 {
        println!("  X_{} = {:?}", p + 1, dist.vars_of(ProcId(p)));
    }
    let run = run_bellman_ford(ProtocolKind::PramPartial, &net, 0, SimConfig::default());
    println!(
        "  distances (distributed, PRAM partial): {:?}",
        run.distances
    );
    println!(
        "  distances (sequential reference):       {:?}",
        shortest_paths_reference(&net, 0)
    );
    println!(
        "  converged: {}, rounds: {}, messages: {}, control bytes: {}",
        run.converged, run.rounds, run.messages, run.control_bytes
    );
    // The same computation on a sparse physical network: a 5-node ring
    // served by the overlay routing layer instead of the implicit mesh.
    let ring_config = SimConfig {
        topology: Some(Topology::ring(net.node_count())),
        ..SimConfig::default()
    };
    let routed = run_bellman_ford(ProtocolKind::PramPartial, &net, 0, ring_config);
    println!(
        "  control bytes, mesh (direct) vs ring (routed): {} vs {} ({:.2}x), distances match: {}",
        run.control_bytes,
        routed.control_bytes,
        routed.control_bytes as f64 / run.control_bytes.max(1) as f64,
        routed.distances == run.distances
    );
}

fn fig9() {
    header(9, "one iteration step of the protocol");
    let net = Network::fig8();
    let n = net.node_count();
    let dist: Distribution = bellman_ford_distribution(&net);
    let mut dsm = DynDsm::new(ProtocolKind::PramPartial, dist);
    for i in 0..n {
        dsm.write(ProcId(i), distance_var(i), 100 + i as i64)
            .unwrap();
        dsm.write(ProcId(i), counter_var(n, i), 1000 + i as i64)
            .unwrap();
    }
    dsm.settle();
    for i in 0..n {
        for h in net.predecessors(i) {
            let _ = dsm.read(ProcId(i), counter_var(n, h)).unwrap();
            let _ = dsm.read(ProcId(i), distance_var(h)).unwrap();
        }
        dsm.write(ProcId(i), distance_var(i), 200 + i as i64)
            .unwrap();
        dsm.write(ProcId(i), counter_var(n, i), 2000 + i as i64)
            .unwrap();
    }
    dsm.settle();
    let h = dsm.history();
    print!("{}", h.pretty());
    println!(
        "  recorded step is PRAM consistent: {}",
        check(&h, Criterion::Pram).consistent
    );
}

fn main() {
    let only: Option<u32> = std::env::args().nth(1).and_then(|s| s.parse().ok());
    let figures: Vec<(u32, fn())> = vec![
        (1, fig1 as fn()),
        (2, fig2),
        (3, fig3),
        (4, fig4),
        (5, fig5),
        (6, fig6),
        (7, fig7_8),
        (9, fig9),
    ];
    for (n, f) in figures {
        if only.is_none() || only == Some(n) || (only == Some(8) && n == 7) {
            f();
        }
    }
    println!();
}
