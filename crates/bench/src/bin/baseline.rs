//! Track the scenario-matrix control-byte numbers as a checked-in
//! baseline.
//!
//! The scenario matrix is fully deterministic (seeded workloads, seeded
//! channels, deterministic routing), so its control-byte column is a
//! regression oracle: any code change that makes a protocol spend more
//! control bytes shows up as an exact diff. CI runs the check mode on
//! every push.
//!
//! ```text
//! cargo run --release -p bench --bin baseline                          # print rows
//! cargo run --release -p bench --bin baseline -- --write BENCH_baseline.json
//! cargo run --release -p bench --bin baseline -- --check BENCH_baseline.json
//! cargo run --release -p bench --bin baseline -- --check BENCH_baseline.json --tolerance 0.05
//! cargo run --release -p bench --bin baseline -- --threaded --write BENCH_threaded.json
//! cargo run --release -p bench --bin baseline -- --threaded --check BENCH_threaded.json --floor 0.1
//! ```
//!
//! `--check` exits non-zero when any cell's control bytes exceed the
//! baseline by more than the tolerance (default 2%), or when the matrix
//! shape changed (cells appeared or vanished) — regenerate with `--write`
//! deliberately in that case and review the diff.
//!
//! `--threaded` switches both modes to the threaded-backend throughput
//! floor (`BENCH_threaded.json`): operation counts are deterministic and
//! compared exactly, while the wall-clock ops/s column only fails when it
//! drops below `--floor` (default 50%, CI uses 10%) of the recorded
//! number — a smoke gate against the backend silently collapsing, not a
//! tuning benchmark.

use bench::{
    compare_threaded_baseline, compare_to_baseline, scenario_matrix, scenario_matrix_large,
    threaded_baseline_sweep, ScenarioMatrixRow, ThreadedBaselineRow, BASELINE_COORDS,
    BASELINE_LARGE_TIERS,
};
use std::process::ExitCode;

/// The standard matrix plus the large-tier rows (n = 64 and 256). The
/// large rows are gated on the same deterministic control-byte counts as
/// the rest — wall-clock never enters the baseline.
fn sweep() -> Vec<ScenarioMatrixRow> {
    let (n, ops, seed) = BASELINE_COORDS;
    let mut rows = scenario_matrix(n, ops, seed);
    for (large_n, large_ops) in BASELINE_LARGE_TIERS {
        rows.extend(scenario_matrix_large(large_n, large_ops, seed));
    }
    rows
}

fn render(rows: &[ScenarioMatrixRow]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&row.to_json());
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn parse(text: &str) -> Vec<ScenarioMatrixRow> {
    text.lines()
        .filter_map(ScenarioMatrixRow::from_json)
        .collect()
}

fn render_threaded(rows: &[ThreadedBaselineRow]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&row.to_json());
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// The `--threaded` modes: same write/check/print surface, but over the
/// throughput-floor rows instead of the control-byte matrix.
fn run_threaded(flag_value: impl Fn(&str) -> Option<String>) -> ExitCode {
    let floor: f64 = flag_value("--floor")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);

    if let Some(path) = flag_value("--write") {
        let rows = threaded_baseline_sweep();
        std::fs::write(&path, render_threaded(&rows)).expect("write threaded baseline file");
        println!("wrote {} threaded rows to {path}", rows.len());
        return ExitCode::SUCCESS;
    }

    if let Some(path) = flag_value("--check") {
        let text = std::fs::read_to_string(&path).expect("read threaded baseline file");
        let baseline: Vec<ThreadedBaselineRow> = text
            .lines()
            .filter_map(ThreadedBaselineRow::from_json)
            .collect();
        if baseline.is_empty() {
            eprintln!("no rows parsed from {path}; regenerate with --threaded --write");
            return ExitCode::FAILURE;
        }
        let current = threaded_baseline_sweep();
        let findings = compare_threaded_baseline(&baseline, &current, floor);
        if findings.is_empty() {
            println!(
                "threaded baseline OK: {} cells at or above {:.0}% of recorded throughput",
                baseline.len(),
                floor * 100.0
            );
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "threaded baseline check FAILED against {path} ({} finding(s), floor {:.0}%):",
            findings.len(),
            floor * 100.0
        );
        for finding in &findings {
            eprintln!("  {finding}");
        }
        eprintln!("if the change is intentional, regenerate with --threaded --write and commit");
        return ExitCode::FAILURE;
    }

    print!("{}", render_threaded(&threaded_baseline_sweep()));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    if args.iter().any(|a| a == "--threaded") {
        return run_threaded(flag_value);
    }
    let tolerance: f64 = flag_value("--tolerance")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);

    if let Some(path) = flag_value("--write") {
        let rows = sweep();
        std::fs::write(&path, render(&rows)).expect("write baseline file");
        println!("wrote {} rows to {path}", rows.len());
        return ExitCode::SUCCESS;
    }

    if let Some(path) = flag_value("--check") {
        let text = std::fs::read_to_string(&path).expect("read baseline file");
        let baseline = parse(&text);
        if baseline.is_empty() {
            eprintln!("no rows parsed from {path}; regenerate with --write");
            return ExitCode::FAILURE;
        }
        let current = sweep();
        let diffs = compare_to_baseline(&baseline, &current, tolerance);
        if diffs.is_empty() {
            println!(
                "baseline OK: {} cells within {:.1}% control-byte tolerance",
                baseline.len(),
                tolerance * 100.0
            );
            return ExitCode::SUCCESS;
        }
        eprintln!(
            "baseline check FAILED against {path} ({} finding(s), tolerance {:.1}%):",
            diffs.len(),
            tolerance * 100.0
        );
        for diff in &diffs {
            eprintln!("  {diff}");
        }
        eprintln!("if the change is intentional, regenerate with --write and commit the diff");
        return ExitCode::FAILURE;
    }

    // No mode: print the sweep as the JSON array the baseline file stores.
    print!("{}", render(&sweep()));
    ExitCode::SUCCESS
}
