//! Regenerate the efficiency experiments (E1–E10) as text tables.
//!
//! ```text
//! cargo run --release -p bench --bin efficiency
//! cargo run --release -p bench --bin efficiency -- --max-procs 32
//! cargo run --release -p bench --bin efficiency -- --scaling-max 256
//! cargo run --release -p bench --bin efficiency -- --threads-max 4
//! ```
//!
//! `--max-procs` caps the E1 size loop; `--scaling-max` caps the E8
//! scaling sweep (default 1024 — CI passes 64 to bound wall-clock);
//! `--threads-max` caps the E9 threaded-backend thread count (the sweep
//! list goes up to 64 worker threads; default cap 8 — CI passes 4 to
//! stay inside small runners, pass 64 for the full table).

use bench::{
    bellman_ford_point, delivery_mode_sweep, distribution_families, efficiency_sweep_point,
    fault_tolerance_sweep, op_log_vs_sequencer_sweep, relevance_fraction, routed_vs_mesh_sweep,
    scaling_sweep, threaded_throughput_sweep,
};
use histories::Distribution;

fn main() {
    let mut max_procs = 16usize;
    let mut scaling_max = 1024usize;
    let mut threads_max = 8usize;
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--max-procs") {
        if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
            max_procs = v;
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--scaling-max") {
        if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
            scaling_max = v;
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--threads-max") {
        if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
            threads_max = v;
        }
    }

    println!("E1/E2 — control overhead vs system size (replication factor 2, 10 ops/process, 50% writes)");
    println!(
        "{:>6} {:<16} {:>10} {:>12} {:>14} {:>14} {:>12}",
        "procs",
        "protocol",
        "messages",
        "data bytes",
        "control bytes",
        "ctl bytes/op",
        "max relevant"
    );
    let mut n = 4;
    while n <= max_procs {
        let dist = Distribution::random(n, 2 * n, 2, 7);
        for row in efficiency_sweep_point(&dist, 10, 11) {
            println!(
                "{:>6} {:<16} {:>10} {:>12} {:>14} {:>14.1} {:>12}",
                row.processes,
                row.protocol.name(),
                row.messages,
                row.data_bytes,
                row.control_bytes,
                row.control_bytes_per_op,
                row.max_relevant_nodes
            );
        }
        println!();
        n *= 2;
    }

    println!("E2 — control overhead vs replication factor (12 processes)");
    println!(
        "{:>8} {:<16} {:>14} {:>14}",
        "replicas", "protocol", "control bytes", "ctl bytes/op"
    );
    for replicas in [1, 2, 4, 8, 12] {
        let dist = Distribution::random(12, 24, replicas, 5);
        for row in efficiency_sweep_point(&dist, 8, 13) {
            println!(
                "{:>8} {:<16} {:>14} {:>14.1}",
                replicas,
                row.protocol.name(),
                row.control_bytes,
                row.control_bytes_per_op
            );
        }
        println!();
    }

    println!(
        "E3 — fraction of x-relevant processes (Theorem 1) by distribution family (10 processes)"
    );
    println!(
        "{:<18} {:>12} {:>22}",
        "family", "repl. factor", "relevant fraction"
    );
    for (name, dist) in distribution_families(10, 3) {
        println!(
            "{:<18} {:>12.2} {:>22.2}",
            name,
            dist.mean_replication_factor(),
            relevance_fraction(&dist, 8)
        );
    }
    println!();

    println!("E4 — distributed Bellman-Ford cost vs network size");
    println!(
        "{:>6} {:<16} {:>10} {:>14} {:>8} {:>8}",
        "nodes", "protocol", "messages", "control bytes", "rounds", "correct"
    );
    let mut n = 5;
    while n <= max_procs {
        for row in bellman_ford_point(n, 9) {
            println!(
                "{:>6} {:<16} {:>10} {:>14} {:>8} {:>8}",
                row.nodes,
                row.protocol.name(),
                row.messages,
                row.control_bytes,
                row.rounds,
                row.correct
            );
        }
        println!();
        n *= 2;
    }

    println!(
        "E5 — overlay routing cost vs topology (12 processes, same workload on every topology)"
    );
    println!(
        "{:<8} {:<16} {:>10} {:>10} {:>14} {:>14}",
        "topology", "protocol", "messages", "relayed", "control bytes", "ctl vs mesh"
    );
    for row in routed_vs_mesh_sweep(12, 8, 7) {
        println!(
            "{:<8} {:<16} {:>10} {:>10} {:>14} {:>13.2}x",
            row.topology,
            row.protocol.name(),
            row.messages,
            row.forwarded,
            row.control_bytes,
            row.control_ratio_vs_mesh
        );
    }
    println!();

    println!(
        "E6 — wire-efficiency of delivery modes (12 processes, same workload and topology per \
         block; control bytes vs the unicast/unbatched wire)"
    );
    println!(
        "{:<8} {:<18} {:<16} {:>10} {:>10} {:>14} {:>15}",
        "topology",
        "delivery",
        "protocol",
        "messages",
        "relayed",
        "control bytes",
        "ctl vs unicast"
    );
    for row in delivery_mode_sweep(12, 8, 7) {
        println!(
            "{:<8} {:<18} {:<16} {:>10} {:>10} {:>14} {:>14.2}x",
            row.topology,
            row.delivery,
            row.protocol.name(),
            row.messages,
            row.forwarded,
            row.control_bytes,
            row.control_ratio_vs_unicast
        );
    }
    println!();

    println!(
        "E7 — fault-tolerance overhead (12 processes, producer/consumer workload; control bytes \
         and virtual time vs the fault-free run on the same topology)"
    );
    println!(
        "{:<8} {:<14} {:<16} {:>9} {:>6} {:>5} {:>7} {:>14} {:>12} {:>12}",
        "topology",
        "fault",
        "protocol",
        "messages",
        "drops",
        "dups",
        "lost",
        "control bytes",
        "ctl vs none",
        "time vs none"
    );
    for row in fault_tolerance_sweep(12, 8, 7) {
        println!(
            "{:<8} {:<14} {:<16} {:>9} {:>6} {:>5} {:>7} {:>14} {:>11.2}x {:>11.2}x",
            row.topology,
            row.fault,
            row.protocol.name(),
            row.messages,
            row.drops,
            row.duplicates,
            row.crash_losses,
            row.control_bytes,
            row.control_ratio_vs_faultfree,
            row.virtual_ratio_vs_faultfree
        );
    }
    println!();

    println!(
        "E8 — scaling sweep (random(2) distribution, bulk-phase workload, 8 ops/process; \
         wire columns deterministic, events/s is host wall-clock)"
    );
    println!(
        "{:>6} {:<24} {:<16} {:>10} {:>14} {:>10} {:>10} {:>12}",
        "procs",
        "delivery",
        "protocol",
        "messages",
        "control bytes",
        "ctl/op",
        "events",
        "events/s"
    );
    let sizes: Vec<usize> = [64usize, 256, 1024]
        .into_iter()
        .filter(|&n| n <= scaling_max)
        .collect();
    for row in scaling_sweep(&sizes, 8, 7) {
        println!(
            "{:>6} {:<24} {:<16} {:>10} {:>14} {:>10.1} {:>10} {:>12.0}",
            row.processes,
            row.delivery,
            row.protocol.name(),
            row.messages,
            row.control_bytes,
            row.control_bytes_per_op,
            row.events,
            row.events_per_sec()
        );
    }
    println!();

    println!(
        "E9 — threaded execution backend (one OS thread per process, free-running, \
         producer/consumer bulk phase; ops/s, ns/op and batch columns are host wall-clock)"
    );
    println!(
        "{:>8} {:<16} {:>10} {:>14} {:>10} {:>10} {:>17} {:>17}",
        "threads",
        "protocol",
        "ops",
        "threaded ops/s",
        "ns/op",
        "mean batch",
        "simnet ops/s",
        "simnet events/s"
    );
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8, 16, 64]
        .into_iter()
        .filter(|&t| t <= threads_max)
        .collect();
    for row in threaded_throughput_sweep(&thread_counts, 96, 7) {
        println!(
            "{:>8} {:<16} {:>10} {:>14.0} {:>10.0} {:>10.2} {:>17.0} {:>17.0}",
            row.threads,
            row.protocol.name(),
            row.operations,
            row.ops_per_sec(),
            row.ns_per_op(),
            row.mean_batch_len(),
            row.simnet_ops_per_sec(),
            row.simnet_events_per_sec()
        );
    }
    println!();

    println!(
        "E10 — op-log vs sequencer (12 processes, producer/consumer workload; both protocols \
         are sequentially consistent at settle points, so the ratios price the shard log \
         against the centralized sequencer)"
    );
    println!(
        "{:<8} {:<24} {:<14} {:>12} {:>12} {:>12} {:>12} {:>10} {:>11}",
        "topology",
        "delivery",
        "fault",
        "oplog msgs",
        "seq msgs",
        "oplog ctl",
        "seq ctl",
        "ctl vs seq",
        "time vs seq"
    );
    for row in op_log_vs_sequencer_sweep(12, 8, 7) {
        println!(
            "{:<8} {:<24} {:<14} {:>12} {:>12} {:>12} {:>12} {:>9.2}x {:>10.2}x",
            row.topology,
            row.delivery,
            row.fault,
            row.oplog_messages,
            row.sequencer_messages,
            row.oplog_control_bytes,
            row.sequencer_control_bytes,
            row.control_ratio_vs_sequencer,
            row.virtual_ratio_vs_sequencer
        );
    }
    println!();
}
