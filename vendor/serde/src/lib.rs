//! Offline stand-in for `serde`.
//!
//! Provides marker `Serialize` / `Deserialize` traits and re-exports the
//! no-op derive macros from the vendored `serde_derive`, which is all this
//! workspace needs: types are annotated for a future wire format, but byte
//! accounting in the simulator uses an explicit size model rather than a
//! serde data format.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
