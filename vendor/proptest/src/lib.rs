//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the slice of the proptest API this workspace's property tests
//! use:
//!
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer/float
//!   ranges, tuples (arity 1–6), and [`collection::vec`];
//! * [`arbitrary::any`] for the primitive types;
//! * [`ProptestConfig::with_cases`];
//! * the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros.
//!
//! Semantic differences from real proptest: value generation is purely
//! random (no shrinking on failure — the failing values are printed
//! instead), and each test function's random stream is seeded
//! deterministically from its name, so runs are reproducible.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Compatibility module mirroring `proptest::test_runner`.
pub mod test_runner {
    pub use crate::ProptestConfig;
}

/// Strategies: how random values of a type are generated.
pub mod strategy {
    use super::SmallRng;
    use rand::{Rng, SampleUniform};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// A strategy returning a fixed value every time.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }
}

/// `any::<T>()` and the [`Arbitrary`] trait behind it.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::SmallRng;
    use rand::RngCore;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained random value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_inclusive: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Build the deterministic random stream used by [`proptest!`]-generated
/// tests (referenced from the macro expansion so that consumer crates do
/// not need their own `rand` dependency).
pub fn new_rng(seed: u64) -> SmallRng {
    <SmallRng as rand::SeedableRng>::seed_from_u64(seed)
}

/// Deterministically seed a test's random stream from its name, so failures
/// are reproducible without a persistence file.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    hash
}

/// Assert a condition inside a [`proptest!`] body, reporting the generated
/// inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right); };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*); };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right); };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*); };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::new_rng($crate::seed_for(concat!(
                module_path!(),
                "::",
                stringify!($name)
            )));
            for case in 0..config.cases {
                let strategy = ($($strat,)+);
                // The values are moved into the test body, so snapshot the
                // (tiny) generator state instead: on failure the same case
                // is regenerated just to report it.
                let rng_at_case = rng.clone();
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&strategy, &mut rng);
                let run = || -> () { $body };
                if ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)).is_err() {
                    let mut replay_rng = rng_at_case;
                    let inputs =
                        $crate::strategy::Strategy::generate(&strategy, &mut replay_rng);
                    panic!(
                        "proptest case {} of {} failed for {} with inputs:\n{:#?}\n(deterministic seed; rerun reproduces it)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        inputs,
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5u64..=9), flip in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            let _ = flip;
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0u16..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in v {
                prop_assert!(x < 100);
            }
        }

        #[test]
        fn prop_map_transforms(n in (1usize..4).prop_map(|x| x * 10)) {
            prop_assert!(n == 10 || n == 20 || n == 30);
        }

        #[test]
        #[should_panic(expected = "with inputs")]
        fn failing_cases_report_their_inputs(n in 0usize..100) {
            prop_assert!(n > 100, "always fails");
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }
}
