//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its message and
//! statistics types so they are ready for a real wire format, but no code
//! path serializes through serde (the simulator accounts for bytes with its
//! own explicit size model). With no registry access, these derives expand
//! to nothing: the types still compile, and the marker traits in the
//! vendored `serde` crate keep the names meaningful.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
