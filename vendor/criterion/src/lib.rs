//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the criterion 0.5 API the `bench` crate uses:
//! [`Criterion`], [`BenchmarkGroup`] (`sample_size`, `warm_up_time`,
//! `measurement_time`, `bench_function`, `bench_with_input`, `finish`),
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — warm up for the configured time,
//! then time `sample_size` batches and report min/mean — but honest: every
//! benchmark closure really runs, so `cargo bench` exercises the same code
//! paths the real harness would, and `--test` mode (used by `cargo test
//! --benches`) runs each benchmark once.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-value helper preventing the optimizer from deleting a benchmark
/// body. Re-exported with criterion's historical name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: a function name plus a parameter rendered with
/// `Display`, shown as `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Create an id under `name` for one `parameter` point.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Create an id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.name, self.parameter)
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Filled by `iter`: (total duration, iterations) per sample.
    samples: Vec<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Run `routine` repeatedly: warm-up, then `sample_size` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.config.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up, and estimate the per-iteration cost while at it.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().checked_div(warm_iters.max(1) as u32);
        // Pick an iteration count per sample so that all samples together
        // roughly fill measurement_time.
        let per_iter = per_iter.unwrap_or(Duration::from_nanos(1)).max(Duration::from_nanos(1));
        let budget = self.config.measurement_time.as_nanos()
            / (self.config.sample_size.max(1) as u128);
        let iters_per_sample = (budget / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push((start.elapsed(), iters_per_sample));
        }
    }
}

#[derive(Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            test_mode: false,
        }
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    config: Config,
    filter: Option<String>,
}


impl Criterion {
    /// Honour the conventional harness flags (`--test`, a name filter).
    /// Unknown flags (e.g. `--bench` passed by cargo) are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.config.test_mode = true,
                "--sample-size" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        self.config.sample_size = v;
                    }
                }
                "--measurement-time" => {
                    if let Some(secs) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        if secs.is_finite() && secs > 0.0 {
                            self.config.measurement_time = Duration::from_secs_f64(secs);
                        }
                    }
                }
                "--warm-up-time" => {
                    if let Some(secs) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        if secs.is_finite() && secs > 0.0 {
                            self.config.warm_up_time = Duration::from_secs_f64(secs);
                        }
                    }
                }
                // Value-taking criterion flags we accept but ignore: consume
                // the value too, so it is not mistaken for a name filter.
                "--save-baseline" | "--baseline" | "--load-baseline" | "--output-format"
                | "--color" | "--profile-time" => {
                    args.next();
                }
                other if !other.starts_with('-') => self.filter = Some(other.to_string()),
                // Boolean flags (--bench, --noplot, --quiet, ...) are ignored.
                _ => {}
            }
        }
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            config: self.config.clone(),
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let config = self.config.clone();
        run_one(&config, &self.filter, name, f);
        self
    }
}

/// A group of benchmarks sharing configuration, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    config: Config,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Set the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Set the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Benchmark `f` under `id` (a `&str` or a [`BenchmarkId`]).
    pub fn bench_function<I: Display, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&self.config, &self.criterion.filter, &full, f);
        self
    }

    /// Benchmark `f` with an explicit input value.
    pub fn bench_with_input<I: Display, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &T),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&self.config, &self.criterion.filter, &full, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (report separator; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    config: &Config,
    filter: &Option<String>,
    name: &str,
    mut f: F,
) {
    if let Some(filter) = filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        config,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if config.test_mode {
        println!("test {name} ... ok");
        return;
    }
    if bencher.samples.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|(d, n)| d.as_secs_f64() / *n as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{name:<60} mean {:>12} min {:>12} ({} samples)",
        fmt_time(mean),
        fmt_time(min),
        per_iter.len()
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

/// Declare a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark `main` function, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("proto", 8).to_string(), "proto/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn bencher_runs_the_routine_in_test_mode() {
        let config = Config {
            test_mode: true,
            ..Config::default()
        };
        let mut count = 0u64;
        let mut b = Bencher {
            config: &config,
            samples: Vec::new(),
        };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn group_runs_each_benchmark() {
        let mut criterion = Criterion::default();
        criterion.config.test_mode = true;
        let mut runs = 0u32;
        {
            let mut group = criterion.benchmark_group("g");
            group.sample_size(10);
            group.bench_function("a", |b| b.iter(|| runs += 1));
            group.bench_with_input(BenchmarkId::new("b", 3), &3, |b, x| {
                b.iter(|| runs += *x as u32)
            });
            group.finish();
        }
        assert_eq!(runs, 4);
    }
}
