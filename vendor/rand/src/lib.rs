//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to the crates.io
//! registry, so this vendored crate implements the (small) slice of the
//! `rand 0.8` API the workspace actually uses:
//!
//! * [`rngs::SmallRng`] — a seeded, deterministic xoshiro256** generator;
//! * [`Rng`] — `gen_range` over integer/float ranges and `gen_bool`;
//! * [`SeedableRng`] — `seed_from_u64` / `from_seed`;
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! The implementation is deliberately simple but statistically reasonable
//! (xoshiro256** seeded through SplitMix64, Lemire-style bounded sampling),
//! and fully deterministic for a given seed, which is what the simulation
//! and the benches rely on.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// A source of uniformly distributed random 64-bit words.
pub trait RngCore {
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Build a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build a generator from a `u64` seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Sample uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128).wrapping_sub(low as i128) as u128;
                let v = bounded_u128(rng, span);
                ((low as i128).wrapping_add(v as i128)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                // Widest covered type is 64-bit, so the i128 span never
                // overflows and `span` is always in [1, 2^64].
                let span = (high as i128).wrapping_sub(low as i128) as u128 + 1;
                let v = bounded_u128(rng, span);
                ((low as i128).wrapping_add(v as i128)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + bounded_u128(rng, high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty inclusive range");
        let span = (high - low).wrapping_add(1);
        if span == 0 {
            return ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        }
        low + bounded_u128(rng, span)
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = low + unit * (high - low);
                // `low + unit * span` can round up to `high`; keep the
                // half-open contract.
                if v >= high {
                    high.next_down()
                } else {
                    v
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Uniform value in `[0, span)` (`span > 0`) by widening multiplication.
fn bounded_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        // 64x64 -> 128 multiply-shift; bias is < 2^-64, irrelevant here.
        let x = rng.next_u64() as u128;
        (x * span) >> 64
    } else {
        let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        x % span
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Convenience methods on random generators.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`, matching
    /// `rand 0.8` so behaviour is unchanged if the registry crate is
    /// swapped back in.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: probability {p} outside [0, 1]"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256** seeded via
    /// SplitMix64), mirroring `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                return Self::from_u64(0);
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            Self::from_u64(state)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`SliceRandom`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-9i64..=9);
            assert!((-9..=9).contains(&v));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn gen_bool_rejects_out_of_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        rng.gen_bool(1.5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
